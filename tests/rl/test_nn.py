"""Unit tests for the NumPy MLP and Adam, including gradient checks."""

import numpy as np
import pytest

from repro.rl.nn import MLP, Adam, mlp_op_counts


def _numerical_grads(net, x, loss_fn, eps=1e-6):
    """Central-difference gradients of loss_fn(net.predict(x))."""
    grads = []
    for p in net.parameters:
        g = np.zeros_like(p)
        it = np.nditer(p, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            old = p[idx]
            p[idx] = old + eps
            plus = loss_fn(net.predict(x))
            p[idx] = old - eps
            minus = loss_fn(net.predict(x))
            p[idx] = old
            g[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        grads.append(g)
    return grads


class TestMLP:
    def test_shapes(self):
        net = MLP([3, 8, 2], rng=np.random.default_rng(0))
        out = net.predict(np.zeros(3))
        assert out.shape == (1, 2)
        out = net.predict(np.zeros((5, 3)))
        assert out.shape == (5, 2)

    def test_too_few_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError, match="unknown activation"):
            MLP([2, 2], activation="selu")

    def test_num_parameters(self):
        net = MLP([3, 8, 2])
        assert net.num_parameters == 3 * 8 + 8 + 8 * 2 + 2

    @pytest.mark.parametrize("activation", ["tanh", "relu", "identity"])
    def test_backward_matches_numerical_gradient(self, activation):
        rng = np.random.default_rng(1)
        net = MLP([4, 6, 3], activation=activation, rng=rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss_fn(out):
            return 0.5 * float(np.sum((out - target) ** 2))

        out, cache = net.forward(x)
        analytic, _ = net.backward(cache, out - target)
        numerical = _numerical_grads(net, x, loss_fn)
        for a, n in zip(analytic, numerical):
            assert np.allclose(a, n, atol=1e-5), (a, n)

    def test_backward_input_gradient(self):
        rng = np.random.default_rng(2)
        net = MLP([3, 5, 2], rng=rng)
        x = rng.standard_normal((1, 3))
        target = rng.standard_normal((1, 2))
        out, cache = net.forward(x)
        _, dx = net.backward(cache, out - target)
        # numerical check on the input gradient
        eps = 1e-6
        num = np.zeros_like(x)
        for i in range(3):
            xp, xm = x.copy(), x.copy()
            xp[0, i] += eps
            xm[0, i] -= eps
            lp = 0.5 * np.sum((net.predict(xp) - target) ** 2)
            lm = 0.5 * np.sum((net.predict(xm) - target) ** 2)
            num[0, i] = (lp - lm) / (2 * eps)
        assert np.allclose(dx, num, atol=1e-5)

    def test_copy_weights(self):
        a = MLP([2, 4, 1], rng=np.random.default_rng(0))
        b = MLP([2, 4, 1], rng=np.random.default_rng(9))
        b.copy_weights_from(a)
        x = np.ones((1, 2))
        assert np.array_equal(a.predict(x), b.predict(x))

    def test_copy_weights_shape_mismatch(self):
        a = MLP([2, 4, 1])
        b = MLP([2, 5, 1])
        with pytest.raises(ValueError):
            b.copy_weights_from(a)


class TestAdam:
    def test_descends_quadratic(self):
        p = np.array([5.0])
        opt = Adam([p], lr=0.1, max_grad_norm=None)
        for _ in range(300):
            opt.step([2 * p])  # grad of p^2
        assert abs(p[0]) < 0.1

    def test_gradient_clipping(self):
        p = np.zeros(4)
        opt = Adam([p], lr=1.0, max_grad_norm=1.0)
        opt.step([np.full(4, 100.0)])
        # clipped direction: update magnitude bounded by lr regardless
        assert np.all(np.abs(p) <= 1.0 + 1e-9)

    def test_gradient_count_mismatch(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])

    def test_trains_mlp_on_regression(self):
        rng = np.random.default_rng(4)
        net = MLP([1, 16, 1], rng=rng)
        opt = Adam(net.parameters, lr=1e-2, max_grad_norm=None)
        x = np.linspace(-1, 1, 32)[:, None]
        y = x**2

        def mse():
            return float(np.mean((net.predict(x) - y) ** 2))

        before = mse()
        for _ in range(500):
            out, cache = net.forward(x)
            grads, _ = net.backward(cache, (out - y) / len(x))
            opt.step(grads)
        assert mse() < before * 0.1


class TestOpCounts:
    def test_formula(self):
        counts = mlp_op_counts([4, 64, 64, 2])
        macs = 4 * 64 + 64 * 64 + 64 * 2
        assert counts["forward"] == macs + 64 + 64 + 2
        assert counts["backward"] == 2 * macs + 64 + 64 + 2
        assert counts["parameters"] == macs + 64 + 64 + 2

    def test_backward_roughly_double_forward(self):
        counts = mlp_op_counts([8, 256, 256, 256, 4])
        assert 1.8 < counts["backward"] / counts["forward"] < 2.1
