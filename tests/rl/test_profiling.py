"""Unit tests for the Table IV/V accounting helpers."""

import numpy as np
import pytest

from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.rl.policies import CategoricalPolicy, SMALL_HIDDEN
from repro.rl.profiling import (
    ea_overhead,
    genome_memory_bytes,
    mlp_complexity,
    neat_overhead,
    rl_overhead,
)

from tests.conftest import evolved_genome


def _neat_population(n=10, seed=0):
    cfg = NEATConfig(num_inputs=4, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    return cfg, [
        evolved_genome(cfg, tracker, rng, mutations=5, key=i) for i in range(n)
    ]


class TestMlpComplexity:
    def test_small_cartpole_matches_table5_scale(self):
        # paper Table V small/cartpole: 133 nodes, 4,416 connections
        nodes, conns = mlp_complexity(4, SMALL_HIDDEN, 2)
        assert nodes == 4 + 64 + 64 + 2
        assert conns == 4 * 64 + 64 * 64 + 64 * 2
        assert abs(nodes - 133) <= 5
        assert abs(conns - 4416) <= 100

    def test_large_is_orders_bigger(self):
        _, small = mlp_complexity(4, SMALL_HIDDEN, 2)
        _, large = mlp_complexity(4, (256, 256, 256), 2)
        # paper Table V: large/cartpole has ~1.26M connections vs 4.4K small
        assert large > 25 * small


class TestOverheadRows:
    def test_rl_has_backward_ops(self):
        policy = CategoricalPolicy(4, 2, hidden=SMALL_HIDDEN)
        row = rl_overhead(policy, buffer_bytes=1000)
        assert row.ops_backward > row.ops_forward * 0.8
        assert row.memory_bytes > policy.num_parameters * 4

    def test_ea_no_backward(self):
        row = ea_overhead(4, SMALL_HIDDEN, 2)
        assert row.ops_backward == 0
        assert row.ops_forward > 0

    def test_neat_tiny_footprint(self):
        cfg, genomes = _neat_population()
        row = neat_overhead(genomes, cfg)
        assert row.ops_backward == 0
        ea_row = ea_overhead(4, SMALL_HIDDEN, 2)
        # the Table IV ordering: NEAT << EA (both in ops and memory)
        assert row.ops_forward < ea_row.ops_forward / 10
        assert row.memory_bytes < ea_row.memory_bytes / 10

    def test_table4_ordering(self):
        cfg, genomes = _neat_population()
        policy = CategoricalPolicy(4, 2, hidden=SMALL_HIDDEN)
        rl = rl_overhead(policy, buffer_bytes=4096)
        ea = ea_overhead(4, SMALL_HIDDEN, 2)
        neat = neat_overhead(genomes, cfg)
        assert rl.memory_bytes > ea.memory_bytes > neat.memory_bytes
        assert rl.ops_backward > ea.ops_backward == neat.ops_backward == 0

    def test_neat_requires_genomes(self):
        cfg, _ = _neat_population()
        with pytest.raises(ValueError):
            neat_overhead([], cfg)

    def test_row_formatting(self):
        row = ea_overhead(4, SMALL_HIDDEN, 2)
        formatted = row.as_row()
        assert formatted["algorithm"] == "EA"
        assert formatted["Op. Backward"] == "0.0"
        assert formatted["Local Memory"].endswith("(B)")


class TestGenomeMemory:
    def test_scales_with_genes(self):
        cfg, genomes = _neat_population()
        small = genomes[0]
        tracker = InnovationTracker(2)
        rng = np.random.default_rng(1)
        big = evolved_genome(cfg, tracker, rng, mutations=40, key=99)
        if len(big.connections) > len(small.connections):
            assert genome_memory_bytes(big) > genome_memory_bytes(small)

    def test_sub_kilobyte_for_typical_genomes(self):
        # Table IV reports NEAT local memory ~0.4 KB
        cfg, genomes = _neat_population()
        assert all(genome_memory_bytes(g) < 2048 for g in genomes)
