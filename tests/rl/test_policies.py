"""Unit tests for the actor-critic policies, with gradient checks."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.rl.policies import (
    CategoricalPolicy,
    GaussianPolicy,
    LARGE_HIDDEN,
    SMALL_HIDDEN,
    make_policy,
)


class TestMakePolicy:
    def test_discrete_env_gets_categorical(self):
        policy = make_policy(CartPole(), rng=np.random.default_rng(0))
        assert isinstance(policy, CategoricalPolicy)
        assert policy.action_dim == 2

    def test_continuous_env_gets_gaussian(self):
        policy = make_policy(Pendulum(), rng=np.random.default_rng(0))
        assert isinstance(policy, GaussianPolicy)
        assert policy.action_dim == 1

    def test_hidden_configs(self):
        small = make_policy(CartPole(), hidden=SMALL_HIDDEN)
        large = make_policy(CartPole(), hidden=LARGE_HIDDEN)
        assert small.actor.sizes == [4, 64, 64, 2]
        assert large.actor.sizes == [4, 256, 256, 256, 2]


class TestCategorical:
    def _policy(self, seed=0):
        return CategoricalPolicy(
            3, 4, hidden=(8,), rng=np.random.default_rng(seed)
        )

    def test_sample_shapes(self):
        policy = self._policy()
        obs = np.zeros((5, 3))
        actions, logp = policy.sample(obs)
        assert actions.shape == (5,) and logp.shape == (5,)
        assert np.all((actions >= 0) & (actions < 4))

    def test_log_prob_matches_softmax(self):
        policy = self._policy(1)
        obs = np.random.default_rng(0).standard_normal((6, 3))
        actions = np.array([0, 1, 2, 3, 0, 1])
        logp, entropy, _, logits = policy.log_prob_entropy(obs, actions)
        z = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(z) / np.exp(z).sum(axis=1, keepdims=True)
        expected = np.log(probs[np.arange(6), actions])
        assert np.allclose(logp, expected, atol=1e-9)
        assert np.all(entropy >= 0)
        assert np.all(entropy <= np.log(4) + 1e-9)

    def test_grad_wrt_logits_numerical(self):
        policy = self._policy(2)
        rng = np.random.default_rng(3)
        obs = rng.standard_normal((4, 3))
        actions = np.array([1, 0, 3, 2])
        dlogp = rng.standard_normal(4)
        ent_grad = -0.01 / 4

        logits = policy.actor.predict(obs)
        analytic = policy.grad_wrt_actor_output(logits, actions, dlogp, ent_grad)

        def loss(z):
            zs = z - z.max(axis=1, keepdims=True)
            probs = np.exp(zs) / np.exp(zs).sum(axis=1, keepdims=True)
            lp = np.log(probs[np.arange(4), actions])
            ent = -(probs * np.log(probs + 1e-12)).sum(axis=1)
            return float(np.sum(dlogp * lp) + ent_grad * np.sum(ent))

        eps = 1e-6
        numerical = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                zp, zm = logits.copy(), logits.copy()
                zp[i, j] += eps
                zm[i, j] -= eps
                numerical[i, j] = (loss(zp) - loss(zm)) / (2 * eps)
        assert np.allclose(analytic, numerical, atol=1e-5)

    def test_greedy_policy_returns_logits(self):
        policy = self._policy()
        fn = policy.greedy_policy()
        out = fn(np.zeros(3))
        assert out.shape == (4,)


class TestGaussian:
    def _policy(self, seed=0):
        return GaussianPolicy(
            2, 2, hidden=(8,), rng=np.random.default_rng(seed)
        )

    def test_sample_shapes(self):
        policy = self._policy()
        actions, logp = policy.sample(np.zeros((3, 2)))
        assert actions.shape == (3, 2) and logp.shape == (3,)

    def test_log_prob_matches_scipy(self):
        from scipy import stats

        policy = self._policy(1)
        obs = np.random.default_rng(0).standard_normal((4, 2))
        actions = np.random.default_rng(1).standard_normal((4, 2))
        logp, _, _, mean = policy.log_prob_entropy(obs, actions)
        std = np.exp(policy.log_std)
        expected = np.array(
            [
                stats.multivariate_normal(m, np.diag(std**2)).logpdf(a)
                for m, a in zip(mean, actions)
            ]
        )
        assert np.allclose(logp, expected, atol=1e-8)

    def test_entropy_formula(self):
        policy = self._policy()
        _, entropy, _, _ = policy.log_prob_entropy(
            np.zeros((2, 2)), np.zeros((2, 2))
        )
        expected = policy.log_std.sum() + 0.5 * 2 * np.log(2 * np.pi * np.e)
        assert np.allclose(entropy, expected)

    def test_grad_wrt_mean_numerical(self):
        policy = self._policy(2)
        rng = np.random.default_rng(5)
        obs = rng.standard_normal((3, 2))
        actions = rng.standard_normal((3, 2))
        dlogp = rng.standard_normal(3)

        mean = policy.actor.predict(obs)
        analytic = policy.grad_wrt_actor_output(mean, actions, dlogp, 0.0)

        std2 = np.exp(2 * policy.log_std)

        def loss(mu):
            z = (actions - mu) ** 2 / std2
            lp = (
                -0.5 * z.sum(axis=1)
                - policy.log_std.sum()
                - np.log(2 * np.pi)
            )
            return float(np.sum(dlogp * lp))

        eps = 1e-6
        numerical = np.zeros_like(mean)
        for i in range(mean.shape[0]):
            for j in range(mean.shape[1]):
                mp, mm = mean.copy(), mean.copy()
                mp[i, j] += eps
                mm[i, j] -= eps
                numerical[i, j] = (loss(mp) - loss(mm)) / (2 * eps)
        assert np.allclose(analytic, numerical, atol=1e-5)

    def test_log_std_is_a_parameter(self):
        policy = self._policy()
        assert any(p is policy.log_std for p in policy.parameters)

    def test_log_std_grad_consumed(self):
        policy = self._policy()
        rng = np.random.default_rng(0)
        obs = rng.standard_normal((3, 2))
        actions = rng.standard_normal((3, 2))
        mean = policy.actor.predict(obs)
        policy.grad_wrt_actor_output(mean, actions, np.ones(3), 0.0)
        g1 = policy.consume_log_std_grad()
        g2 = policy.consume_log_std_grad()
        assert np.any(g1 != 0)
        assert np.all(g2 == 0)  # consumed


class TestValue:
    def test_value_shape(self):
        policy = CategoricalPolicy(3, 2, hidden=(8,))
        values = policy.value(np.zeros((7, 3)))
        assert values.shape == (7,)

    def test_num_parameters_counts_everything(self):
        policy = GaussianPolicy(2, 3, hidden=(4,))
        expected = (
            policy.actor.num_parameters
            + policy.critic.num_parameters
            + 3  # log_std
        )
        assert policy.num_parameters == expected
