"""Unit tests for DQN and the replay buffer."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.rl.dqn import DQN
from repro.rl.replay import ReplayBuffer


class TestReplayBuffer:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(obs_dim=2, capacity=0)

    def test_add_and_len(self):
        buf = ReplayBuffer(obs_dim=2, capacity=5)
        for i in range(3):
            buf.add(np.full(2, i), i % 2, float(i), np.full(2, i + 1), False)
        assert len(buf) == 3
        assert not buf.full

    def test_ring_overwrite(self):
        buf = ReplayBuffer(obs_dim=1, capacity=3)
        for i in range(5):
            buf.add(np.array([i]), 0, float(i), np.array([i]), False)
        assert len(buf) == 3
        assert buf.full
        # oldest entries (0, 1) were overwritten by (3, 4)
        stored = set(buf.observations.reshape(-1).tolist())
        assert stored == {2.0, 3.0, 4.0}

    def test_sample_shapes(self):
        buf = ReplayBuffer(obs_dim=4, capacity=10)
        for i in range(6):
            buf.add(np.zeros(4), 1, 0.5, np.ones(4), i == 5)
        obs, actions, rewards, next_obs, dones = buf.sample(
            8, np.random.default_rng(0)
        )
        assert obs.shape == (8, 4)
        assert actions.shape == (8,)
        assert dones.dtype == bool

    def test_sample_empty_rejected(self):
        buf = ReplayBuffer(obs_dim=2, capacity=4)
        with pytest.raises(ValueError):
            buf.sample(2, np.random.default_rng(0))

    def test_memory_scales_with_capacity(self):
        small = ReplayBuffer(obs_dim=4, capacity=100)
        large = ReplayBuffer(obs_dim=4, capacity=10_000)
        assert large.memory_bytes() > 50 * small.memory_bytes()


class TestDQN:
    def test_continuous_env_rejected(self):
        with pytest.raises(TypeError, match="Discrete"):
            DQN(Pendulum(seed=0))

    def test_epsilon_decays(self):
        agent = DQN(CartPole(seed=0), epsilon_decay_steps=100, seed=0)
        assert agent.epsilon() == agent.epsilon_start
        agent._steps = 50
        mid = agent.epsilon()
        agent._steps = 200
        assert agent.epsilon() == pytest.approx(agent.epsilon_end)
        assert agent.epsilon_end < mid < agent.epsilon_start

    def test_greedy_action_is_argmax(self):
        agent = DQN(CartPole(seed=0), hidden=(8,), seed=0)
        obs = np.zeros(4)
        q = agent.q_net.predict(obs[None, :])[0]
        assert agent.act(obs, greedy=True) == int(np.argmax(q))

    def test_update_moves_parameters_and_syncs_target(self):
        agent = DQN(
            CartPole(seed=0),
            hidden=(8,),
            target_sync_every=2,
            seed=0,
        )
        for i in range(10):
            agent.buffer.add(
                np.random.default_rng(i).standard_normal(4),
                i % 2,
                1.0,
                np.random.default_rng(i + 1).standard_normal(4),
                False,
            )
        before = [p.copy() for p in agent.q_net.parameters]
        agent.update()
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(agent.q_net.parameters, before)
        )
        agent.update()  # second update triggers the target sync
        x = np.ones((1, 4))
        assert np.array_equal(
            agent.q_net.predict(x), agent.target_net.predict(x)
        )

    def test_learn_report(self):
        agent = DQN(
            CartPole(seed=0),
            hidden=(16,),
            learning_starts=50,
            seed=0,
        )
        report = agent.learn(
            total_timesteps=400, eval_every_steps=200, eval_episodes=1
        )
        assert report.timesteps >= 400 or report.solved
        assert report.updates > 0
        assert report.fitness_trace
        assert report.times.training > 0

    def test_memory_dominated_by_replay_buffer(self):
        # the Table IV point: DQN's memory is the buffer, not the nets
        agent = DQN(CartPole(seed=0), hidden=(64, 64), buffer_capacity=50_000)
        net_bytes = agent.q_net.num_parameters * 8 * 4
        assert agent.buffer.memory_bytes() > 10 * net_bytes
        assert agent.memory_bytes() > agent.buffer.memory_bytes()
