"""Unit tests for rollout storage and GAE."""

import numpy as np
import pytest

from repro.rl.buffers import RolloutBuffer, compute_gae


class TestGAE:
    def test_single_step(self):
        adv, ret = compute_gae(
            rewards=np.array([1.0]),
            values=np.array([0.5]),
            dones=np.array([False]),
            last_value=2.0,
            gamma=0.9,
            lam=0.95,
        )
        # delta = 1 + 0.9*2 - 0.5 = 2.3
        assert adv[0] == pytest.approx(2.3)
        assert ret[0] == pytest.approx(2.8)

    def test_terminal_cuts_bootstrap(self):
        adv, _ = compute_gae(
            rewards=np.array([1.0]),
            values=np.array([0.5]),
            dones=np.array([True]),
            last_value=100.0,
            gamma=0.9,
        )
        assert adv[0] == pytest.approx(0.5)  # 1 - 0.5, no bootstrap

    def test_lambda_one_is_monte_carlo(self):
        rewards = np.array([1.0, 1.0, 1.0])
        values = np.array([0.0, 0.0, 0.0])
        dones = np.array([False, False, True])
        adv, ret = compute_gae(rewards, values, dones, 0.0, gamma=1.0, lam=1.0)
        assert ret[0] == pytest.approx(3.0)
        assert ret[1] == pytest.approx(2.0)
        assert ret[2] == pytest.approx(1.0)

    def test_lambda_zero_is_td0(self):
        rewards = np.array([1.0, 2.0])
        values = np.array([0.5, 0.25])
        dones = np.array([False, False])
        adv, _ = compute_gae(rewards, values, dones, 1.0, gamma=0.5, lam=0.0)
        assert adv[0] == pytest.approx(1.0 + 0.5 * 0.25 - 0.5)
        assert adv[1] == pytest.approx(2.0 + 0.5 * 1.0 - 0.25)

    def test_hand_computed_two_step(self):
        rewards = np.array([1.0, 0.0])
        values = np.array([0.0, 1.0])
        dones = np.array([False, False])
        gamma, lam = 0.9, 0.5
        d1 = 0.0 + gamma * 2.0 - 1.0  # last step, bootstrap 2.0
        d0 = 1.0 + gamma * 1.0 - 0.0
        adv, _ = compute_gae(rewards, values, dones, 2.0, gamma, lam)
        assert adv[1] == pytest.approx(d1)
        assert adv[0] == pytest.approx(d0 + gamma * lam * d1)


class TestRolloutBuffer:
    def _full_buffer(self, n=4):
        buf = RolloutBuffer(obs_dim=2, action_shape=(), capacity=n)
        for i in range(n):
            buf.add(
                obs=np.array([i, i]),
                action=np.array(i % 2),
                reward=float(i),
                done=(i == n - 1),
                value=0.5,
                log_prob=-0.1,
            )
        return buf

    def test_add_and_len(self):
        buf = self._full_buffer()
        assert len(buf) == 4
        assert buf.full

    def test_overflow_rejected(self):
        buf = self._full_buffer()
        with pytest.raises(RuntimeError, match="full"):
            buf.add(np.zeros(2), np.array(0), 0.0, False, 0.0, 0.0)

    def test_reset(self):
        buf = self._full_buffer()
        buf.reset()
        assert len(buf) == 0 and not buf.full

    def test_finalize_and_batch(self):
        buf = self._full_buffer()
        buf.finalize(last_value=0.0, normalize_advantages=False)
        obs, actions, logp, adv, ret = buf.batch()
        assert obs.shape == (4, 2)
        assert np.allclose(ret, adv + buf.values[:4])

    def test_advantage_normalization(self):
        buf = self._full_buffer()
        buf.finalize(last_value=0.0, normalize_advantages=True)
        _, _, _, adv, _ = buf.batch()
        assert abs(adv.mean()) < 1e-9
        assert abs(adv.std() - 1.0) < 1e-6

    def test_minibatches_cover_everything(self):
        buf = self._full_buffer(8)
        buf.finalize(last_value=0.0)
        rng = np.random.default_rng(0)
        seen = []
        for batch in buf.minibatches(3, rng):
            seen.extend(batch[0][:, 0].tolist())
        assert sorted(seen) == list(range(8))

    def test_memory_bytes_positive_and_scales(self):
        small = RolloutBuffer(obs_dim=4, action_shape=(), capacity=8)
        large = RolloutBuffer(obs_dim=4, action_shape=(), capacity=128)
        assert 0 < small.memory_bytes() < large.memory_bytes()
