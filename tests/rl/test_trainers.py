"""Unit tests for the A2C and PPO trainers."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.rl.a2c import A2C
from repro.rl.ppo import PPO


class TestA2C:
    def test_learn_reports_structure(self):
        agent = A2C(CartPole(seed=0), hidden=(16,), seed=0)
        report = agent.learn(total_timesteps=200, eval_every_updates=10)
        assert report.timesteps >= 200
        assert report.updates >= 1
        assert report.fitness_trace
        assert report.times.total > 0

    def test_update_changes_parameters(self):
        agent = A2C(CartPole(seed=0), hidden=(16,), seed=0)
        before = [p.copy() for p in agent.policy.parameters]
        agent.learn(total_timesteps=64, eval_every_updates=100)
        after = agent.policy.parameters
        assert any(not np.array_equal(a, b) for a, b in zip(after, before))

    def test_time_breakdown_populated(self):
        agent = A2C(CartPole(seed=0), hidden=(16,), seed=0)
        agent.learn(total_timesteps=160, eval_every_updates=100)
        fracs = agent.times.fractions()
        assert abs(sum(fracs.values()) - 1.0) < 1e-9
        assert agent.times.training > 0
        assert agent.times.forward > 0

    def test_continuous_env(self):
        agent = A2C(Pendulum(seed=0), hidden=(16,), seed=0)
        report = agent.learn(total_timesteps=120, eval_every_updates=100)
        assert report.timesteps >= 120

    def test_time_limit_stops_early(self):
        agent = A2C(CartPole(seed=0), hidden=(16,), seed=0)
        report = agent.learn(
            total_timesteps=10_000_000,
            eval_every_updates=1,
            time_limit=0.2,
        )
        assert report.timesteps < 10_000_000

    def test_improves_on_cartpole(self):
        # loose learning check: best fitness after training beats the
        # untrained policy's fitness
        agent = A2C(CartPole(seed=0), hidden=(32, 32), seed=1, lr=2e-3)
        before = agent._evaluate(episodes=5)
        report = agent.learn(total_timesteps=6_000, eval_every_updates=25)
        assert report.best_fitness >= before


class TestPPO:
    def test_learn_reports_structure(self):
        agent = PPO(CartPole(seed=0), hidden=(16,), seed=0)
        report = agent.learn(total_timesteps=256, eval_every_updates=1)
        assert report.timesteps >= 128
        assert report.updates >= 1

    def test_clip_fraction_reported(self):
        agent = PPO(CartPole(seed=0), hidden=(16,), seed=0)
        agent._collect_rollout()
        stats = agent.update()
        assert 0.0 <= stats["clip_fraction"] <= 1.0

    def test_multiple_epochs_run(self):
        agent = PPO(
            CartPole(seed=0), hidden=(16,), n_epochs=3, batch_size=32, seed=0
        )
        before = [p.copy() for p in agent.policy.parameters]
        agent._collect_rollout()
        agent.update()
        after = agent.policy.parameters
        assert any(not np.array_equal(a, b) for a, b in zip(after, before))

    def test_continuous_env(self):
        agent = PPO(Pendulum(seed=0), hidden=(16,), seed=0)
        report = agent.learn(total_timesteps=256, eval_every_updates=100)
        assert report.timesteps >= 128

    def test_training_dominates_forward(self):
        # the paper's Fig 3 observation: Training ~60% of RL runtime
        agent = PPO(CartPole(seed=0), hidden=(64, 64), seed=0)
        agent.learn(total_timesteps=1024, eval_every_updates=100)
        fracs = agent.times.fractions()
        assert fracs["training"] > fracs["forward"]
