"""Unit tests for the shared RL trainer plumbing."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.rl.a2c import A2C
from repro.rl.base import TimeBreakdown


class TestTimeBreakdown:
    def test_total(self):
        t = TimeBreakdown(forward=1.0, env=2.0, training=3.0)
        assert t.total == 6.0

    def test_fractions_sum_to_one(self):
        t = TimeBreakdown(forward=1.0, env=1.0, training=2.0)
        fr = t.fractions()
        assert fr["training"] == pytest.approx(0.5)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_breakdown_safe(self):
        fr = TimeBreakdown().fractions()
        assert all(v == 0.0 for v in fr.values())


class TestEnvActionTranslation:
    def test_discrete_action_is_int(self):
        agent = A2C(CartPole(seed=0), hidden=(4,), seed=0)
        action = agent._to_env_action(np.array(1))
        assert isinstance(action, int)

    def test_box_action_clipped(self):
        agent = A2C(Pendulum(seed=0), hidden=(4,), seed=0)
        action = agent._to_env_action(np.array([100.0]))
        assert agent.env.action_space.contains(np.asarray(action))
        assert float(np.asarray(action)[0]) == pytest.approx(2.0)


class TestRolloutCollection:
    def test_buffer_filled_to_horizon(self):
        agent = A2C(CartPole(seed=0), hidden=(4,), seed=0)
        steps = agent._collect_rollout()
        assert steps == agent.n_steps
        assert agent.buffer.full

    def test_episode_reset_inside_rollout(self):
        # with an 8-step horizon and a random policy, cartpole episodes
        # end inside the buffer; the loop must reset and keep rolling
        agent = A2C(CartPole(seed=0), hidden=(4,), seed=1)
        for _ in range(30):
            agent._collect_rollout()
            agent.buffer.reset()
        # if we got here without RuntimeError the reset path works

    def test_rollout_records_bootstrapped_values(self):
        agent = A2C(CartPole(seed=0), hidden=(4,), seed=0)
        agent._collect_rollout()
        _, _, _, adv, ret = agent.buffer.batch()
        assert np.isfinite(adv).all()
        assert np.isfinite(ret).all()


class TestEvaluation:
    def test_eval_uses_fixed_env_seed(self):
        agent = A2C(CartPole(seed=0), hidden=(4,), seed=0)
        a = agent._evaluate(episodes=2)
        b = agent._evaluate(episodes=2)
        assert a == b  # greedy policy + fixed eval seed

    def test_gaussian_eval_path(self):
        agent = A2C(Pendulum(seed=0), hidden=(4,), seed=0)
        fitness = agent._evaluate(episodes=1)
        assert np.isfinite(fitness)
