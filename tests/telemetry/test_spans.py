"""Unit tests for the span tracer."""

import pytest

from repro.telemetry.spans import Tracer, get_tracer, set_tracer, span


class TestTracer:
    def test_span_records_timing(self):
        tracer = Tracer()
        with tracer.span("work", generation=3):
            pass
        (recorded,) = tracer.spans
        assert recorded.name == "work"
        assert recorded.track == "host"
        assert recorded.duration >= 0.0
        assert recorded.start >= 0.0
        assert recorded.attrs == {"generation": 3}
        assert recorded.parent_id is None

    def test_nesting_sets_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner finishes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans] == ["boom"]
        # the stack unwound: a following span is not parented to "boom"
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_add_span_explicit_clock(self):
        tracer = Tracer()
        recorded = tracer.add_span(
            "pu.setup", start=1.5, duration=0.25, track="pu3", cycles=500
        )
        assert recorded.track == "pu3"
        assert recorded.end == 1.75
        assert recorded.attrs == {"cycles": 500}
        with pytest.raises(ValueError):
            tracer.add_span("bad", start=0.0, duration=-1.0)

    def test_bounded_and_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.add_span(f"s{i}", start=float(i), duration=0.0)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_seconds_by_name(self):
        tracer = Tracer()
        tracer.add_span("phase.evaluate", start=0.0, duration=2.0)
        tracer.add_span("phase.evaluate", start=2.0, duration=1.0)
        tracer.add_span("phase.speciate", start=3.0, duration=0.5)
        tracer.add_span("other", start=4.0, duration=9.0)
        totals = tracer.seconds_by_name("phase.")
        assert totals == {"phase.evaluate": 3.0, "phase.speciate": 0.5}

    def test_to_dict_schema(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", k=1):
                pass
        inner, outer = (s.to_dict() for s in tracer.spans)
        assert inner["type"] == "span"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["attrs"] == {"k": 1}
        assert "parent_id" not in outer
        assert "attrs" not in outer


class TestGlobalSpanHelper:
    def test_disabled_helper_is_shared_noop(self):
        assert get_tracer() is None
        first = span("anything", generation=1)
        second = span("else")
        assert first is second  # shared null context, no allocation

    def test_installed_helper_records(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with span("guarded", k=2):
                pass
        finally:
            set_tracer(previous)
        assert [s.name for s in tracer.spans] == ["guarded"]
        assert get_tracer() is previous

    def test_set_tracer_returns_previous(self):
        a, b = Tracer(), Tracer()
        assert set_tracer(a) is None
        try:
            assert set_tracer(b) is a
        finally:
            set_tracer(None)
