"""TelemetrySession lifecycle and end-to-end platform integration."""

from pathlib import Path

import pytest

from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
    summarize_trace,
    write_trace_jsonl,
)


class TestSessionLifecycle:
    def test_install_uninstall_restores_previous(self):
        outer_tracer, outer_metrics = Tracer(), MetricsRegistry()
        set_tracer(outer_tracer)
        set_metrics(outer_metrics)
        try:
            session = TelemetrySession()
            with session:
                assert get_tracer() is session.tracer
                assert get_metrics() is session.metrics
                assert session.installed
            assert get_tracer() is outer_tracer
            assert get_metrics() is outer_metrics
            assert not session.installed
        finally:
            set_tracer(None)
            set_metrics(None)

    def test_install_is_idempotent(self):
        session = TelemetrySession()
        session.install()
        session.install()  # second install must not clobber the saved state
        session.uninstall()
        assert get_tracer() is None
        assert get_metrics() is None

    def test_nested_sessions_restore_in_lifo_order(self):
        outer, inner = TelemetrySession(), TelemetrySession()
        outer.install()
        inner.install()
        assert get_tracer() is inner.tracer
        inner.uninstall()
        assert get_tracer() is outer.tracer
        assert get_metrics() is outer.metrics
        outer.uninstall()
        assert get_tracer() is None
        assert get_metrics() is None

    def test_out_of_order_teardown_does_not_resurrect(self):
        """Regression: uninstalling sessions in non-LIFO order used to
        re-install the inner session's (dead) tracer when the outer one
        left, leaking spans from later work into a closed session."""
        outer, inner = TelemetrySession(), TelemetrySession()
        outer.install()
        inner.install()
        # non-LIFO: the *outer* session leaves first
        outer.uninstall()
        # the live inner session must stay active, not be clobbered
        assert get_tracer() is inner.tracer
        assert get_metrics() is inner.metrics
        inner.uninstall()
        # ...and the fully-unwound state is clean, not outer's tracer
        assert get_tracer() is None
        assert get_metrics() is None

    def test_out_of_order_teardown_three_deep(self):
        a, b, c = (TelemetrySession() for _ in range(3))
        a.install()
        b.install()
        c.install()
        b.uninstall()  # pull the middle out
        assert get_tracer() is c.tracer
        c.uninstall()
        assert get_tracer() is a.tracer
        a.uninstall()
        assert get_tracer() is None
        assert get_metrics() is None

    def test_sessions_are_thread_local(self):
        import threading

        session = TelemetrySession()
        seen: dict[str, object] = {}

        def worker() -> None:
            seen["tracer"] = get_tracer()

        with session:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # a fresh thread starts from the default context: no tracer
        assert seen["tracer"] is None

    def test_phase_timer_shares_registry(self):
        session = TelemetrySession()
        session.phase_timer.record("evaluate", 2.0)
        assert (
            session.metrics.counter("phase.evaluate_seconds").value == 2.0
        )

    def test_export_writes_selected_sinks(self, tmp_path):
        session = TelemetrySession()
        with session:
            session.tracer.add_span("x", start=0.0, duration=1.0)
        written = session.export(
            trace_path=tmp_path / "t.jsonl",
            chrome_path=tmp_path / "t.chrome.json",
            metrics_path=tmp_path / "m.json",
        )
        assert set(written) == {"trace", "chrome", "metrics"}
        for path in written.values():
            assert Path(path).exists()


def _run(backend: str, telemetry: TelemetrySession | None = None, **kwargs):
    platform = E3(
        "cartpole",
        backend=backend,
        neat_config=NEATConfig(population_size=24),
        seed=3,
        telemetry=telemetry,
        **kwargs,
    )
    return platform.run(max_generations=3)


class TestPlatformIntegration:
    def test_inax_run_produces_expected_spans(self):
        session = TelemetrySession()
        result = _run("inax", telemetry=session)
        names = {s.name for s in session.tracer.spans}
        for expected in (
            "phase.evaluate",
            "phase.speciate",
            "phase.reproduce",
            "backend.evaluate",
            "pu.setup",
            "pu.compute",
            "inax.wave",
        ):
            assert expected in names, expected
        # device spans landed on per-PU tracks
        tracks = {s.track for s in session.tracer.spans}
        assert any(t.startswith("pu") for t in tracks)
        assert result.telemetry is session
        assert not session.installed  # run() uninstalled it

    def test_phase_timer_matches_profiler_exactly(self):
        session = TelemetrySession()
        result = _run("cpu", telemetry=session)
        # the TeeRecorder feeds both from the same record() calls
        assert session.phase_timer.phases == result.profiler.phases
        assert session.phase_timer.fractions() == result.profiler.fractions()

    def test_trace_summary_fractions_match_profiler(self, tmp_path):
        """Acceptance: trace-summary phase fractions within 1% of the
        profiler's fractions()."""
        session = TelemetrySession()
        result = _run("cpu-fast", telemetry=session)
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, session.tracer, metrics=session.metrics)
        summary = summarize_trace(path)
        fractions = summary.phase_fractions()
        expected = result.profiler.fractions()
        assert set(fractions) == set(expected)
        for phase, value in expected.items():
            assert fractions[phase] == pytest.approx(value, abs=0.01)

    def test_metrics_cover_episodes_and_cache(self):
        session = TelemetrySession()
        _run("cpu-fast", telemetry=session)
        snapshot = session.metrics.snapshot()
        assert snapshot["episode.steps"]["count"] > 0
        assert snapshot["rollout.wave_size"]["count"] > 0
        assert "fastcpu.cache.hits" in snapshot
        assert snapshot["neat.generations"]["value"] == 3

    def test_worker_shards_ship_telemetry(self):
        session = TelemetrySession()
        _run("cpu-fast", telemetry=session, workers=2)
        snapshot = session.metrics.snapshot()
        assert snapshot["fastcpu.shard.evaluate_seconds"]["value"] > 0
        assert snapshot["fastcpu.shard.genomes"]["count"] > 0
        # worker-side histograms merged back into the parent registry
        assert snapshot["episode.steps"]["count"] > 0
        assert snapshot["rollout.wave_size"]["count"] > 0

    def test_telemetry_does_not_change_evolution(self):
        """Acceptance: identical fitness trajectory with telemetry on."""
        bare = _run("cpu-fast")
        traced = _run("cpu-fast", telemetry=TelemetrySession())
        assert [s.best_fitness for s in bare.history] == [
            s.best_fitness for s in traced.history
        ]
        assert [s.mean_fitness for s in bare.history] == [
            s.mean_fitness for s in traced.history
        ]
        assert bare.best_fitness == traced.best_fitness

    def test_globals_clean_after_run(self):
        _run("cpu", telemetry=TelemetrySession())
        assert get_tracer() is None
        assert get_metrics() is None
