"""Unit tests for the JSONL / Chrome-trace sinks and the summary."""

import json

from repro.telemetry.export import (
    format_trace_summary,
    read_trace_jsonl,
    summarize_trace,
    validate_record,
    validate_trace_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Tracer


def _loaded_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("phase.evaluate", generation=0):
        pass
    tracer.add_span(
        "pu.setup", start=0.0, duration=1e-6, track="pu0", cycles=200
    )
    tracer.add_span(
        "pu.compute",
        start=1e-6,
        duration=5e-6,
        track="pu0",
        cycles=1000,
        active_cycles=800,
        steps=10,
    )
    tracer.add_span(
        "pu.drain", start=6e-6, duration=1e-6, track="pu0", cycles=200
    )
    tracer.add_span("inax.wave", start=0.0, duration=7e-6, track="inax")
    return tracer


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("episode.count").inc(4)
    registry.gauge("fastcpu.cache.size").set(12)
    registry.histogram("episode.steps").observe(100)
    return registry


class TestJsonl:
    def test_writes_all_row_types(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        manifest = RunManifest.collect(command="run", backend="inax")
        rows = write_trace_jsonl(
            path, _loaded_tracer(), manifest=manifest, metrics=_registry()
        )
        parsed = read_trace_jsonl(path)
        assert len(parsed) == rows == 1 + 5 + 3
        assert parsed[0]["type"] == "manifest"
        assert {r["type"] for r in parsed} == {"manifest", "span", "metric"}
        assert validate_trace_jsonl(path) == []

    def test_validation_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "span", "name": "x", "track": "host",
                        "start": -1.0, "dur": 0.0, "span_id": 1})
            + "\nnot json\n"
            + json.dumps({"type": "wat"})
            + "\n"
        )
        errors = validate_trace_jsonl(path)
        assert any(e.startswith("line 1:") and "negative" in e for e in errors)
        assert any(e.startswith("line 2:") and "invalid JSON" in e for e in errors)
        assert any(e.startswith("line 3:") and "unknown row type" in e for e in errors)

    def test_validate_record_span_and_metric(self):
        assert validate_record(
            {"type": "span", "name": "n", "track": "host", "start": 0,
             "dur": 1, "span_id": 2}
        ) == []
        assert validate_record({"type": "span"})  # missing everything
        assert validate_record(
            {"type": "metric", "name": "m", "kind": "counter", "value": 1}
        ) == []
        assert validate_record({"type": "metric", "name": "m", "kind": "nope"})
        assert validate_record(
            {"type": "metric", "name": "h", "kind": "histogram"}
        )  # histogram fields missing


class TestChromeTrace:
    def test_device_tracks_get_own_threads(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(path, _loaded_tracer())
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == count
        # host process metadata plus one thread_name per device track
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (1, 1, "pu0") in names
        assert (1, 0, "inax") in names
        pu_events = [
            e for e in events if e["ph"] == "X" and e["name"] == "pu.compute"
        ]
        assert pu_events[0]["pid"] == 1 and pu_events[0]["tid"] == 1
        assert pu_events[0]["dur"] == 5.0  # 5e-6 s -> 5 us
        host = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
        assert host[0]["name"] == "phase.evaluate"

    def test_manifest_embedded(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        manifest = RunManifest.collect(command="run", backend="inax")
        write_chrome_trace(path, _loaded_tracer(), manifest=manifest)
        payload = json.loads(path.read_text())
        assert payload["otherData"]["backend"] == "inax"


class TestMetricsJson:
    def test_snapshot_plus_manifest(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(
            path, _registry(),
            manifest=RunManifest.collect(command="run", backend="cpu"),
        )
        payload = json.loads(path.read_text())
        assert payload["manifest"]["backend"] == "cpu"
        assert payload["metrics"]["episode.count"]["value"] == 4
        assert payload["metrics"]["episode.steps"]["count"] == 1


class TestSummary:
    def test_summarize_phases_and_pus(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(
            path, _loaded_tracer(),
            manifest=RunManifest.collect(command="run", backend="inax"),
            metrics=_registry(),
        )
        summary = summarize_trace(path)
        assert summary.manifest["backend"] == "inax"
        assert set(summary.phase_seconds) == {"evaluate"}
        assert summary.span_count == 5
        assert summary.metric_count == 3
        pu = summary.pu_cycles["pu0"]
        assert pu["setup"] == 200
        assert pu["compute"] == 1000
        assert pu["drain"] == 200
        assert pu["active"] == 800
        assert pu["steps"] == 10
        # U(PU) = (setup + active) / (setup + compute + drain)
        assert summary.pu_utilization("pu0") == (200 + 800) / 1400
        assert summary.phase_fractions() == {"evaluate": 1.0}

    def test_format_renders_tables(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, _loaded_tracer())
        text = format_trace_summary(summarize_trace(path))
        assert "host phases" in text
        assert "INAX PU timeline" in text
        assert "pu0" in text
        assert "evaluate" in text

    def test_empty_trace_summary(self):
        summary = summarize_trace([])
        assert summary.phase_fractions() == {}
        text = format_trace_summary(summary)
        assert "no phase spans" in text

    def test_to_dict_is_json_ready(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(
            path, _loaded_tracer(),
            manifest=RunManifest.collect(command="run", backend="inax"),
            metrics=_registry(),
        )
        payload = summarize_trace(path).to_dict()
        assert set(payload) == {
            "manifest", "phase_seconds", "phase_fractions", "pu_cycles",
            "pu_utilization", "span_count", "metric_count",
        }
        assert payload["manifest"]["backend"] == "inax"
        assert payload["phase_fractions"]["evaluate"] == 1.0
        assert payload["pu_utilization"]["pu0"] == (200 + 800) / 1400
        # round-trips through json unchanged
        assert json.loads(json.dumps(payload, sort_keys=True)) == json.loads(
            json.dumps(payload, sort_keys=True)
        )

    def test_to_dict_empty_trace(self):
        payload = summarize_trace([]).to_dict()
        assert payload["manifest"] is None
        assert payload["phase_seconds"] == {}
        assert payload["span_count"] == 0
