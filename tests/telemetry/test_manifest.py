"""Unit tests for the run manifest."""

from repro.telemetry.manifest import RunManifest


class TestRunManifest:
    def test_collect_fills_platform_fields(self):
        manifest = RunManifest.collect(
            command="run", env="cartpole", backend="inax", seed=3
        )
        assert manifest.command == "run"
        assert manifest.env == "cartpole"
        assert manifest.seed == 3
        assert manifest.python_version
        assert manifest.platform
        assert manifest.numpy_version
        assert manifest.created_unix > 0

    def test_to_dict_is_typed_row(self):
        row = RunManifest.collect(command="run", backend="cpu").to_dict()
        assert row["type"] == "manifest"
        assert row["backend"] == "cpu"
        assert "python_version" in row

    def test_roundtrip_ignores_unknown_keys(self):
        original = RunManifest.collect(
            command="run", backend="cpu", extra={"checkpoint": "x.json"}
        )
        row = original.to_dict()
        row["type"] = "manifest"  # discriminator is not a dataclass field
        row["future_field"] = 123
        restored = RunManifest.from_dict(row)
        assert restored == original


class TestGitAndPipelineAttribution:
    def test_collect_captures_git_state(self):
        # the repo under test *is* a git checkout, so collect() must
        # resolve a 40-hex commit for it
        manifest = RunManifest.collect(command="run", backend="cpu")
        assert len(manifest.git_commit) == 40
        assert all(c in "0123456789abcdef" for c in manifest.git_commit)
        assert isinstance(manifest.git_dirty, bool)

    def test_git_revision_outside_checkout(self, tmp_path):
        from repro.telemetry.manifest import git_revision

        commit, dirty = git_revision(cwd=str(tmp_path))
        assert commit == ""
        assert dirty is False

    def test_pipeline_config_fields(self):
        manifest = RunManifest.collect(
            command="run", backend="inax",
            schedule="lpt", prefetch=True, overlap=True,
        )
        row = manifest.to_dict()
        assert row["schedule"] == "lpt"
        assert row["prefetch"] is True
        assert row["overlap"] is True

    def test_pipeline_defaults_are_paper_baseline(self):
        manifest = RunManifest()
        assert manifest.schedule == "arrival"
        assert manifest.prefetch is False
        assert manifest.overlap is False


class TestFabricAttribution:
    def test_fabric_fields(self):
        from dataclasses import asdict

        from repro.resilience.supervisor import SupervisorConfig

        manifest = RunManifest.collect(
            command="islands.run", backend="fabric",
            devices=4, islands=4, migration_interval=5, migration_size=2,
            supervisor=asdict(SupervisorConfig()),
        )
        row = manifest.to_dict()
        assert row["devices"] == 4
        assert row["islands"] == 4
        assert row["migration_interval"] == 5
        assert row["migration_size"] == 2
        assert row["supervisor"]["max_retries"] == 2
        assert row["supervisor"]["probation_generations"] == 1
        row["type"] = "manifest"
        assert RunManifest.from_dict(row) == manifest

    def test_fabric_defaults_are_single_device(self):
        manifest = RunManifest()
        assert manifest.devices == 1
        assert manifest.islands == 1
        assert manifest.migration_interval == 0
        assert manifest.migration_size == 0
        assert manifest.supervisor == {}
