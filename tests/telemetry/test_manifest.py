"""Unit tests for the run manifest."""

from repro.telemetry.manifest import RunManifest


class TestRunManifest:
    def test_collect_fills_platform_fields(self):
        manifest = RunManifest.collect(
            command="run", env="cartpole", backend="inax", seed=3
        )
        assert manifest.command == "run"
        assert manifest.env == "cartpole"
        assert manifest.seed == 3
        assert manifest.python_version
        assert manifest.platform
        assert manifest.numpy_version
        assert manifest.created_unix > 0

    def test_to_dict_is_typed_row(self):
        row = RunManifest.collect(command="run", backend="cpu").to_dict()
        assert row["type"] == "manifest"
        assert row["backend"] == "cpu"
        assert "python_version" in row

    def test_roundtrip_ignores_unknown_keys(self):
        original = RunManifest.collect(
            command="run", backend="cpu", extra={"checkpoint": "x.json"}
        )
        row = original.to_dict()
        row["type"] = "manifest"  # discriminator is not a dataclass field
        row["future_field"] = 123
        restored = RunManifest.from_dict(row)
        assert restored == original
