"""Unit tests for the metrics registry and PhaseTimer."""

import pytest

from repro.core.profiler import PhaseProfiler
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    TeeRecorder,
    get_metrics,
    set_metrics,
)


class TestPrimitives:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0, 1, 5, 10, 50, 1000):
            hist.observe(value)
        # counts[i] = observations <= bucket[i]; last slot is overflow
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.total == 1066
        assert hist.min == 0 and hist.max == 1000
        assert hist.mean == pytest.approx(1066 / 6)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_empty_histogram_to_dict(self):
        state = Histogram("h").to_dict()
        assert state["count"] == 0
        assert state["min"] is None and state["max"] is None


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_roundtrip_merge(self):
        src = MetricsRegistry()
        src.counter("runs").inc(3)
        src.gauge("size").set(7)
        src.histogram("steps").observe(20)
        src.histogram("steps").observe(500)

        dst = MetricsRegistry()
        dst.counter("runs").inc(1)
        dst.histogram("steps").observe(5)
        dst.merge_snapshot(src.snapshot())

        assert dst.counter("runs").value == 4
        assert dst.gauge("size").value == 7
        hist = dst.histogram("steps")
        assert hist.count == 3
        assert hist.total == 525
        assert hist.min == 5 and hist.max == 500

    def test_merge_bucket_mismatch_raises(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1, 2)).observe(1)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(1, 2, 3))
        with pytest.raises(ValueError):
            dst.merge_snapshot(src.snapshot())

    def test_merge_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot({"x": {"kind": "mystery"}})


class TestPhaseTimer:
    def test_profiler_api_parity(self):
        profiler = PhaseProfiler()
        timer = PhaseTimer()
        for recorder in (profiler, timer):
            recorder.record("evaluate", 3.0)
            recorder.record("speciate", 1.0)
            recorder.record("evaluate", 1.0)
        assert timer.phases == profiler.phases
        assert timer.fractions() == profiler.fractions()
        assert timer.total == profiler.total == 5.0
        assert timer.seconds("evaluate") == 4.0
        assert timer.seconds("missing") == 0.0

    def test_phase_context_manager(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        assert timer.phases.keys() == {"work"}
        assert timer.seconds("work") >= 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().record("x", -0.1)

    def test_merge_accepts_profiler(self):
        profiler = PhaseProfiler()
        profiler.record("evaluate", 2.0)
        timer = PhaseTimer()
        timer.record("evaluate", 1.0)
        timer.merge(profiler)
        assert timer.seconds("evaluate") == 3.0

    def test_backed_by_registry_counters(self):
        registry = MetricsRegistry()
        timer = PhaseTimer(registry)
        timer.record("evaluate", 2.0)
        assert registry.counter("phase.evaluate_seconds").value == 2.0

    def test_empty_fractions(self):
        assert PhaseTimer().fractions() == {}


class TestTeeRecorder:
    def test_fans_out(self):
        profiler = PhaseProfiler()
        timer = PhaseTimer()
        tee = TeeRecorder(profiler, timer)
        tee.record("evaluate", 1.5)
        assert profiler.seconds("evaluate") == 1.5
        assert timer.seconds("evaluate") == 1.5


class TestGlobalRegistry:
    def test_set_metrics_returns_previous(self):
        assert get_metrics() is None
        registry = MetricsRegistry()
        assert set_metrics(registry) is None
        try:
            assert get_metrics() is registry
        finally:
            assert set_metrics(None) is registry
        assert get_metrics() is None


class TestHistogramQuantiles:
    def test_nearest_rank_bucket_resolution(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 2, 3, 20, 50, 500):
            hist.observe(value)
        # ranks: p50 -> 3rd obs (bucket <=10), p95/p99 -> overflow -> max
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(0.95) == 500
        assert hist.quantile(0.99) == 500

    def test_clamped_to_observed_range(self):
        hist = Histogram("h", buckets=(100,))
        hist.observe(3)
        hist.observe(7)
        # the bucket bound (100) far exceeds anything observed
        assert hist.quantile(0.5) == 7
        assert hist.quantile(0.0) == 7  # same bucket, same clamped bound

    def test_empty_histogram_returns_none(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        assert hist.quantiles() == {"p50": None, "p95": None, "p99": None}

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_deterministic_across_identical_streams(self):
        def build():
            hist = Histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
            for i in range(1000):
                hist.observe((i % 97) / 100.0)
            return hist.quantiles()

        assert build() == build()

    def test_quantiles_in_snapshot_export(self):
        registry = MetricsRegistry()
        hist = registry.histogram("phase.evaluate_seconds")
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        state = registry.snapshot()["phase.evaluate_seconds"]
        assert set(state["quantiles"]) == {"p50", "p95", "p99"}
        assert state["quantiles"]["p50"] is not None

    def test_merge_snapshot_recomputes_quantiles(self):
        source = MetricsRegistry()
        for value in (1, 2, 3, 200):
            source.histogram("h", buckets=(10, 100)).observe(value)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        merged = target.snapshot()["h"]
        assert merged["quantiles"] == source.snapshot()["h"]["quantiles"]
