"""Smoke tests for the example scripts.

Importing each example catches syntax errors, broken imports, and API
drift without paying for full runs (several examples evolve for
minutes).  The cheapest example also runs end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship ten


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=lambda p: p.stem
)
def test_example_imports_cleanly(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), (
        f"{path.name} must expose a main() entry point"
    )
    assert module.__doc__, f"{path.name} needs a module docstring"


def test_accelerator_deep_dive_runs(capsys):
    # the cheapest end-to-end example (< 1 s): exercises compile, PU
    # sweeps, device accounting, and the fixed-point comparison
    module = _load(EXAMPLES_DIR / "accelerator_deep_dive.py")
    module.main()
    out = capsys.readouterr().out
    assert "U(PE)" in out
    assert "float64 PU output == software forward pass: True" in out
