"""The linter holds the shipped tree — and itself — to its own rules.

These are the review-time contracts, enforced at test time as a
backstop: ``src/repro`` must lint clean with no baseline, every
in-source suppression must carry a rule id (bare ``noqa`` hides too
much), and a seeded determinism violation must fail the run — the
tripwire CI also exercises on every push.
"""

from __future__ import annotations

import shutil

from repro.lint.engine import lint_paths

from .conftest import SRC_REPRO


def test_shipped_tree_is_clean():
    result = lint_paths([SRC_REPRO])
    assert result.files_checked > 50
    assert result.findings == [], [f.to_dict() for f in result.findings]


def test_linter_package_lints_itself_clean():
    result = lint_paths([SRC_REPRO / "lint"])
    assert result.findings == []
    # the tool grants itself no suppressions at all
    assert result.suppressed == []


def test_in_source_suppressions_are_rule_scoped():
    """Every noqa in src/ names explicit rule ids — no blanket waivers."""
    result = lint_paths([SRC_REPRO])
    assert result.suppressed, "expected the reviewed NUM001 allowlist"
    for finding in result.suppressed:
        assert finding.rule.isupper() and finding.rule != "*"


def test_seeded_determinism_violation_is_caught(tmp_path):
    """Planting a global-RNG call in a real module copy fails the lint."""
    victim = tmp_path / "repro" / "neat"
    victim.mkdir(parents=True)
    target = victim / "genome.py"
    shutil.copy(SRC_REPRO / "neat" / "genome.py", target)
    target.write_text(
        target.read_text()
        + "\n\ndef _sneaky():\n    import random\n    return random.random()\n"
    )
    result = lint_paths([target])
    assert [f.rule for f in result.findings] == ["DET001"]
