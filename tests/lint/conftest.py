"""Shared helpers for the linter tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import LintResult, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def lint_source(tmp_path: Path, code: str, name: str = "fixture.py") -> LintResult:
    """Write ``code`` to a scratch file and lint it with the full pack."""
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(code, encoding="utf-8")
    return lint_paths([target])


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
