"""Reporter output: JSON schema and text rendering."""

from __future__ import annotations

import json

from repro.lint.report import REPORT_VERSION, render_json, render_text, to_json_dict

from .conftest import lint_source

_VIOLATION = "import time\nt = time.time()\n"

_FINDING_KEYS = {
    "rule", "severity", "path", "line", "col", "message", "fingerprint",
}
_REPORT_KEYS = {
    "version", "tool", "ok", "files_checked", "findings",
    "suppressed", "baselined", "stale_baseline", "counts",
}


def test_json_schema(tmp_path):
    result = lint_source(tmp_path, _VIOLATION)
    payload = json.loads(render_json(result))
    assert set(payload) == _REPORT_KEYS
    assert payload["version"] == REPORT_VERSION
    assert payload["tool"] == "repro.lint"
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"DET003": 1}
    (finding,) = payload["findings"]
    assert set(finding) == _FINDING_KEYS
    assert finding["rule"] == "DET003"
    assert finding["line"] == 2


def test_json_clean_run(tmp_path):
    payload = to_json_dict(lint_source(tmp_path, "x = 1\n"))
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["counts"] == {}


def test_text_output_lists_location_and_summary(tmp_path):
    result = lint_source(tmp_path, _VIOLATION, name="mod.py")
    text = render_text(result)
    assert "mod.py:2:" in text
    assert "DET003 error:" in text
    assert "1 finding in 1 file" in text


def test_text_counts_suppressed(tmp_path):
    code = "import time\nt = time.time()  # repro: noqa\n"
    text = render_text(lint_source(tmp_path, code))
    assert "0 findings" in text
    assert "1 suppressed by noqa" in text
