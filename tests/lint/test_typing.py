"""mypy gate: ``repro.telemetry`` and ``repro.lint`` stay strict-clean.

mypy is a dev-only tool, not a runtime dependency — the test skips
cleanly where it is absent, and CI installs it so the gate runs on
every push (the ``lint`` job in ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import pytest

mypy_api = pytest.importorskip("mypy.api", reason="mypy not installed")

from .conftest import SRC_REPRO  # noqa: E402

REPO_ROOT = SRC_REPRO.parents[1]


def test_strict_packages_typecheck():
    stdout, stderr, status = mypy_api.run(
        [
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            str(SRC_REPRO / "telemetry"),
            str(SRC_REPRO / "lint"),
        ]
    )
    assert status == 0, f"mypy reported errors:\n{stdout}\n{stderr}"
