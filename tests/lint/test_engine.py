"""Engine mechanics: suppression, fingerprints, scoping, parse errors."""

from __future__ import annotations

from pathlib import Path

from repro.lint.engine import (
    PARSE_ERROR_RULE,
    lint_paths,
    load_module,
    module_name_for,
)

from .conftest import lint_source

_VIOLATION = "import time\nt = time.time()\n"


# ------------------------------------------------------------ suppressions
def test_bare_noqa_suppresses_every_rule(tmp_path):
    code = "import time\nt = time.time()  # repro: noqa\n"
    result = lint_source(tmp_path, code)
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["DET003"]


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    code = "import time\nt = time.time()  # repro: noqa[DET001]\n"
    result = lint_source(tmp_path, code)
    assert [f.rule for f in result.findings] == ["DET003"]


def test_noqa_accepts_multiple_rule_ids(tmp_path):
    code = (
        "import time\n"
        "t = time.time() if 1.0 == 1.0 else 0  # repro: noqa[DET003, NUM001]\n"
    )
    result = lint_source(tmp_path, code)
    assert result.findings == []
    assert {f.rule for f in result.suppressed} == {"DET003", "NUM001"}


def test_plain_flake8_noqa_is_not_ours(tmp_path):
    code = "import time\nt = time.time()  # noqa\n"
    result = lint_source(tmp_path, code)
    assert [f.rule for f in result.findings] == ["DET003"]


# ------------------------------------------------------------ fingerprints
def test_fingerprint_survives_line_shifts(tmp_path):
    first = lint_source(tmp_path, _VIOLATION, name="a/mod.py")
    shifted = lint_source(
        tmp_path, "\n\n# padding\n" + _VIOLATION, name="a/mod.py"
    )
    assert len(first.findings) == len(shifted.findings) == 1
    assert first.findings[0].fingerprint == shifted.findings[0].fingerprint
    assert first.findings[0].line != shifted.findings[0].line


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    code = "import time\nt = time.time()\nu = time.time()\n"
    result = lint_source(tmp_path, code)
    prints = [f.fingerprint for f in result.findings]
    assert len(prints) == 2
    assert len(set(prints)) == 2


def test_fingerprint_differs_across_files(tmp_path):
    a = lint_source(tmp_path, _VIOLATION, name="a.py")
    b = lint_source(tmp_path, _VIOLATION, name="b.py")
    assert a.findings[0].fingerprint != b.findings[0].fingerprint


# ----------------------------------------------------------------- scoping
def test_module_name_derivation(tmp_path):
    root = tmp_path / "repro" / "neat"
    root.mkdir(parents=True)
    (root / "genome.py").write_text("x = 1\n")
    assert module_name_for(root / "genome.py") == "repro.neat.genome"
    (root / "__init__.py").write_text("")
    assert module_name_for(root / "__init__.py") == "repro.neat"
    other = tmp_path / "scripts" / "tool.py"
    other.parent.mkdir()
    other.write_text("x = 1\n")
    assert module_name_for(other) is None


def test_determinism_rules_exempt_telemetry_package(tmp_path):
    package = tmp_path / "repro" / "telemetry"
    package.mkdir(parents=True)
    target = package / "clock.py"
    target.write_text(_VIOLATION)
    assert lint_paths([target]).findings == []


def test_same_code_outside_exempt_package_fires(tmp_path):
    target = tmp_path / "repro" / "neat" / "clock.py"
    target.parent.mkdir(parents=True)
    target.write_text(_VIOLATION)
    assert [f.rule for f in lint_paths([target]).findings] == ["DET003"]


# ------------------------------------------------------------ parse errors
def test_syntax_error_becomes_parse_finding(tmp_path):
    result = lint_source(tmp_path, "def broken(:\n", name="broken.py")
    assert [f.rule for f in result.findings] == [PARSE_ERROR_RULE]
    assert result.files_checked == 1


def test_parse_finding_does_not_hide_other_files(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    (tmp_path / "bad.py").write_text(_VIOLATION)
    result = lint_paths([tmp_path])
    assert {f.rule for f in result.findings} == {PARSE_ERROR_RULE, "DET003"}
    assert result.files_checked == 2


# ----------------------------------------------------------- file discovery
def test_pycache_and_duplicates_are_skipped(tmp_path):
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "junk.py").write_text(_VIOLATION)
    (tmp_path / "mod.py").write_text("x = 1\n")
    result = lint_paths([tmp_path, tmp_path / "mod.py"])
    assert result.files_checked == 1
    assert result.findings == []


def test_loaded_module_resolves_aliases(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import numpy as np\nx = np.random\n")
    module = load_module(target)
    assert module.import_aliases()["np"] == "numpy"
    assert module.module is None
    assert isinstance(module.relpath, str)
