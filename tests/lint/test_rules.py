"""Every rule fires on its crafted fixture and honors suppression.

Each fixture file under ``fixtures/`` marks violating lines with a
trailing ``# VIOLATION <RULE-ID>`` comment and suppressed twins with
``# repro: noqa[RULE-ID]``, so the expected finding set is read from
the fixture itself — adding a case to a fixture automatically extends
the test.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint.engine import lint_paths

from .conftest import FIXTURES

_VIOLATION_RE = re.compile(r"#\s*VIOLATION\s+(?P<rule>[A-Z]+\d+)")

FIXTURE_RULES = {
    "det001_global_rng.py": "DET001",
    "det002_unseeded_rng.py": "DET002",
    "det003_wall_clock.py": "DET003",
    "det004_set_iteration.py": "DET004",
    "det005_mutable_default.py": "DET005",
    "tel001_unguarded_telemetry.py": "TEL001",
    "par001_backend_parity.py": "PAR001",
    "num001_float_equality.py": "NUM001",
    "res001_exception_hygiene.py": "RES001",
}


def _expected_violations(path: Path) -> set[tuple[str, int]]:
    expected: set[tuple[str, int]] = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _VIOLATION_RE.search(text)
        if match:
            expected.add((match.group("rule"), lineno))
    return expected


def test_every_rule_has_a_fixture():
    present = {p.name for p in FIXTURES.glob("*.py")}
    assert set(FIXTURE_RULES) <= present


@pytest.mark.parametrize("fixture_name,rule_id", sorted(FIXTURE_RULES.items()))
def test_rule_fires_on_fixture_and_respects_noqa(fixture_name, rule_id):
    path = FIXTURES / fixture_name
    expected = _expected_violations(path)
    assert expected, f"{fixture_name} marks no violations"

    result = lint_paths([path])
    found = {(f.rule, f.line) for f in result.findings}
    # exactly the marked lines fire — nothing more, nothing less
    assert found == expected
    assert all(rule == rule_id for rule, _ in expected)

    # the suppressed twin(s) were recorded as suppressed, not missed
    suppressed_rules = {f.rule for f in result.suppressed}
    assert rule_id in suppressed_rules


def test_fixtures_cover_at_least_six_rules():
    assert len(set(FIXTURE_RULES.values())) >= 6


def test_rules_do_not_cross_fire():
    """Each fixture triggers only its own rule (no false positives)."""
    for fixture_name, rule_id in FIXTURE_RULES.items():
        result = lint_paths([FIXTURES / fixture_name])
        assert {f.rule for f in result.findings} == {rule_id}, fixture_name


# ------------------------------------------------------------- edge cases
def test_det001_ignores_generator_method_draws(tmp_path):
    from .conftest import lint_source

    code = (
        "import numpy as np\n"
        "def f(rng):\n"
        "    rng = np.random.default_rng(3)\n"
        "    return rng.random() + rng.normal()\n"
    )
    assert lint_source(tmp_path, code).findings == []


def test_det002_seed_keyword_counts_as_seeded(tmp_path):
    from .conftest import lint_source

    code = "import numpy as np\nr = np.random.default_rng(seed=4)\n"
    assert lint_source(tmp_path, code).findings == []


def test_det003_resolves_import_aliases(tmp_path):
    from .conftest import lint_source

    code = "from time import time as now\nt = now()\n"
    result = lint_source(tmp_path, code)
    assert [f.rule for f in result.findings] == ["DET003"]


def test_det004_sorted_wrapping_is_clean(tmp_path):
    from .conftest import lint_source

    code = "for x in sorted(set([3, 1, 2])):\n    print(x)\n"
    assert lint_source(tmp_path, code).findings == []


def test_par001_silent_without_backends_dict(tmp_path):
    from .conftest import lint_source

    code = "class Foo:\n    pass\nREGISTRY = {'foo': Foo}\n"
    assert lint_source(tmp_path, code).findings == []


def test_num001_integer_comparisons_are_clean(tmp_path):
    from .conftest import lint_source

    code = "def f(n):\n    return n == 3 or n != 0\n"
    assert lint_source(tmp_path, code).findings == []
