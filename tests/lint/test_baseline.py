"""Baseline add/expire semantics."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.engine import lint_paths

_VIOLATION = "import time\nt = time.time()\n"
_CLEAN = "import time\nt = time.perf_counter()\n"


def _lint(path):
    return lint_paths([path])


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert len(baseline) == 0


def test_roundtrip(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_VIOLATION)
    result = _lint(target)
    baseline = Baseline.from_findings(result.findings)
    baseline.save(tmp_path / "baseline.json")

    payload = json.loads((tmp_path / "baseline.json").read_text())
    assert payload["version"] == BASELINE_VERSION
    assert len(payload["findings"]) == 1

    reloaded = Baseline.load(tmp_path / "baseline.json")
    assert reloaded.entries.keys() == baseline.entries.keys()


def test_baselined_findings_do_not_fail(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_VIOLATION)
    baseline = Baseline.from_findings(_lint(target).findings)

    result = baseline.apply(_lint(target))
    assert result.ok
    assert result.findings == []
    assert [f.rule for f in result.baselined] == ["DET003"]
    assert result.stale_baseline == []


def test_new_violation_still_fails_with_baseline(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_VIOLATION)
    baseline = Baseline.from_findings(_lint(target).findings)

    target.write_text(_VIOLATION + "u = time.time()\n")
    result = baseline.apply(_lint(target))
    assert not result.ok
    assert len(result.findings) == 1  # only the new one
    assert len(result.baselined) == 1


def test_fixed_violation_goes_stale_and_expires(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_VIOLATION)
    baseline = Baseline.from_findings(_lint(target).findings)
    (stale_fp,) = baseline.entries

    target.write_text(_CLEAN)
    result = baseline.apply(_lint(target))
    assert result.ok
    assert result.stale_baseline == [stale_fp]

    # --update-baseline semantics: rebuild from current findings
    refreshed = Baseline.from_findings(result.all_raw())
    assert len(refreshed) == 0


def test_unsupported_version_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(bad)


def test_malformed_findings_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": BASELINE_VERSION, "findings": []}))
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(bad)
