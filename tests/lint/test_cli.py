"""CLI behavior: exit codes, formats, baseline workflow, delegation."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main

_VIOLATION = "import time\nt = time.time()\n"


@pytest.fixture
def bad_file(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(_VIOLATION)
    return target


def test_clean_run_exits_zero(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(bad_file, capsys):
    assert main([str(bad_file)]) == 1
    out = capsys.readouterr().out
    assert "DET003" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_format(bad_file, capsys):
    assert main(["--format", "json", str(bad_file)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.lint"
    assert payload["counts"] == {"DET003": 1}


def test_json_report_file_written_alongside_text(bad_file, tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main(["--json-report", str(report), str(bad_file)]) == 1
    payload = json.loads(report.read_text())
    assert payload["ok"] is False
    assert "DET003" in capsys.readouterr().out  # stdout stayed text


def test_update_baseline_then_clean(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(
        ["--baseline", str(baseline), "--update-baseline", str(bad_file)]
    ) == 0
    assert baseline.exists()
    # with the baseline applied the same tree is green
    assert main(["--baseline", str(baseline), str(bad_file)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_update_baseline_requires_baseline(bad_file, capsys):
    assert main(["--update-baseline", str(bad_file)]) == 2
    assert "requires --baseline" in capsys.readouterr().err


def test_malformed_baseline_exits_two(bad_file, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "findings": {}}))
    assert main(["--baseline", str(baseline), str(bad_file)]) == 2
    assert "version" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "DET001", "DET002", "DET003", "DET004", "DET005",
        "TEL001", "PAR001", "NUM001",
    ):
        assert rule_id in out
    assert "contract:" in out


def test_repro_cli_lint_subcommand_delegates(bad_file, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(bad_file)]) == 1
    assert "DET003" in capsys.readouterr().out
    assert repro_main(["lint", "--list-rules"]) == 0
