"""Fixture: DET004 — iteration over set expressions (never imported)."""


def order(keys, other):
    out = []
    for key in set(keys):  # VIOLATION DET004
        out.append(key)
    for key in set(keys) | set(other):  # VIOLATION DET004
        out.append(key)
    vals = [g for g in {1, 2, 3}]  # VIOLATION DET004
    ok = [k for k in sorted(set(keys))]
    ok2 = list(sorted({x for x in keys}))
    for key in set(keys):  # repro: noqa[DET004]
        out.append(key)
    return out, vals, ok, ok2
