"""Fixture: DET001 — global-RNG calls (never imported, only parsed)."""

import random

import numpy as np


def draw():
    a = random.random()  # VIOLATION DET001
    b = np.random.rand(3)  # VIOLATION DET001
    np.random.seed(0)  # VIOLATION DET001
    c = random.random()  # repro: noqa[DET001]
    rng = np.random.default_rng(7)  # ok: seeded generator construction
    d = rng.random()  # ok: drawing from a passed-in generator
    return a, b, c, d
