"""Fixture: DET005 — mutable default arguments (never imported)."""


def accumulate(item, bucket=[]):  # VIOLATION DET005
    bucket.append(item)
    return bucket


def index(item, *, table={}):  # VIOLATION DET005
    return table.setdefault(item, len(table))


def dedupe(item, seen=set()):  # repro: noqa[DET005]
    seen.add(item)
    return seen


def fine(item, bucket=None, names=(), limit=0):
    return item, bucket, names, limit
