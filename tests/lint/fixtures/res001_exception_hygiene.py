"""Fixture: RES001 — exception-hygiene violations (never imported)."""


def swallow_everything(risky):
    try:
        return risky()
    except:  # VIOLATION RES001
        return None


def silent_pass(risky):
    try:
        return risky()
    except Exception:  # VIOLATION RES001
        pass


def silent_with_comment_string(risky):
    try:
        return risky()
    except BaseException:  # VIOLATION RES001
        "nothing to see here"


def silent_tuple(risky):
    try:
        return risky()
    except (ValueError, Exception):  # VIOLATION RES001
        pass


def teardown_guard(handle):
    try:
        handle.close()
    except Exception:  # repro: noqa[RES001] -- interpreter teardown
        pass


def narrow_catch(risky):
    try:
        return risky()
    except ValueError:
        pass  # a *narrow* swallow is the author's explicit decision


def surfaced_catchall(risky, log):
    try:
        return risky()
    except Exception as error:
        log.append(error)
        return None
