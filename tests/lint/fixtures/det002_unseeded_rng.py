"""Fixture: DET002 — unseeded RNG construction (never imported)."""

import random

import numpy as np


def build():
    bad = np.random.default_rng()  # VIOLATION DET002
    bad2 = random.Random()  # VIOLATION DET002
    bad3 = random.SystemRandom()  # VIOLATION DET002
    ok = np.random.default_rng(0)
    ok2 = np.random.default_rng(seed=11)
    ok3 = random.Random(3)
    sup = np.random.default_rng()  # repro: noqa[DET002]
    return bad, bad2, bad3, ok, ok2, ok3, sup
