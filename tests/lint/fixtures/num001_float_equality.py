"""Fixture: NUM001 — bit-exact float comparisons (never imported)."""


def close_enough(x, y, flag):
    if x == 1.5:  # VIOLATION NUM001
        return True
    if 0.0 != y:  # VIOLATION NUM001
        return False
    if y != 0.0:  # repro: noqa[NUM001]
        return False
    if flag == 3:  # ok: integer comparison
        return True
    return abs(x - y) < 1e-9  # ok: tolerance comparison
