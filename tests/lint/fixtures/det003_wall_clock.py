"""Fixture: DET003 — wall-clock reads (never imported)."""

import time
from datetime import datetime


def stamp():
    t = time.time()  # VIOLATION DET003
    d = datetime.now()  # VIOLATION DET003
    u = datetime.utcnow()  # VIOLATION DET003
    ok = time.perf_counter()  # monotonic measuring clock is allowed
    sup = time.time()  # repro: noqa[DET003]
    return t, d, u, ok, sup
