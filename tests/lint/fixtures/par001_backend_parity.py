"""Fixture: PAR001 — backend registry parity (never imported)."""


class EvaluationBackend:
    name = "backend"

    def _evaluate(self, genomes):
        raise NotImplementedError

    def close(self):
        pass


class GoodBackend(EvaluationBackend):
    name = "good"

    def _evaluate(self, genomes):
        return genomes


class NoEvaluate(EvaluationBackend):  # VIOLATION PAR001
    name = "lazy"


class WrongName(EvaluationBackend):
    name = "mismatch"  # VIOLATION PAR001

    def _evaluate(self, genomes):
        return genomes


class Quiet(EvaluationBackend):  # repro: noqa[PAR001]
    name = "quiet"


BACKENDS = {
    "good": GoodBackend,
    "lazy": NoEvaluate,
    "wrong": WrongName,
    "quiet": Quiet,
    "ghost": MissingBackend,  # VIOLATION PAR001 (undefined class)
}
