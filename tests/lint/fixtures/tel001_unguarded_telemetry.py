"""Fixture: TEL001 — unguarded telemetry in a hot module (never imported)."""

from repro.telemetry import TelemetrySession
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import Tracer, get_tracer


def hot_path(value):
    get_metrics().counter("x").inc()  # VIOLATION TEL001
    tracer = Tracer()  # VIOLATION TEL001
    session = TelemetrySession()  # VIOLATION TEL001
    registry = get_metrics()  # ok: stored and guarded below
    if registry is not None:
        registry.counter("x").inc(value)
    t = get_tracer()
    if t is not None:
        t.add_span("a", 0.0, 1.0)
    get_metrics().gauge("y")  # repro: noqa[TEL001]
    return tracer, session
