"""Chaos determinism for the fabric backend.

The farm's recovery contract, asserted end-to-end on CartPole:

* **placement transparency** — a clean N-device farm is fitness
  bit-identical to the single-device INAX backend (the per-(genome,
  episode) seeding contract makes device placement invisible);
* **fault transparency** — killing a device mid-generation recovers
  through eviction + deterministic re-pack and still finishes fitness
  bit-identical to the clean run;
* **replayability** — the same FaultPlan over the same run yields the
  same structured resilience log, byte for byte.
"""

import numpy as np
import pytest

from repro.core.backends import INAXBackend
from repro.fabric.backend import FabricINAXBackend
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import DeviceFault, FaultPlan

from tests.conftest import evolved_genome


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=8)


def _genomes(cfg, n=8, mutations=6, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(n)
    ]


INAX_CFG = dict(num_pus=3, num_pes_per_pu=2)


def _fabric(devices=2, plan_text=None, **kwargs):
    return FabricINAXBackend(
        "cartpole",
        _cfg(),
        inax_config=INAXConfig(**INAX_CFG),
        base_seed=1,
        devices=devices,
        fault_plan=(
            FaultPlan.parse(plan_text) if plan_text is not None else None
        ),
        **kwargs,
    )


def _fitness(backend):
    genomes = _genomes(_cfg())
    try:
        backend.evaluate(genomes)
    finally:
        backend.close()
    return [g.fitness for g in genomes]


class TestPlacementTransparency:
    def test_clean_farm_matches_single_device_bitwise(self):
        single = _fitness(
            INAXBackend(
                "cartpole",
                _cfg(),
                inax_config=INAXConfig(**INAX_CFG),
                base_seed=1,
            )
        )
        for devices in (1, 2, 3):
            assert _fitness(_fabric(devices=devices)) == single

    def test_farm_walls_cover_every_device(self):
        backend = _fabric(devices=2)
        try:
            backend.evaluate(_genomes(_cfg()))
        finally:
            backend.close()
        walls = backend.last_device_walls
        assert set(walls) == {0, 1}
        # 8 genomes over num_pus=3 = 3 waves; both devices worked
        assert all(wall > 0 for wall in walls.values())
        assert backend.last_wall_cycles == max(walls.values())


class TestMidGenerationKill:
    def test_device_kill_recovers_through_eviction_and_repack(self):
        clean = _fitness(_fabric(devices=2))
        backend = _fabric(
            devices=2, plan_text="seed=0,fabric.device_drop@1.0"
        )
        chaotic = _fitness(backend)
        assert chaotic == clean
        sup = backend.fabric
        # device 0 walked the ladder and was evicted mid-generation;
        # device 1's eviction was refused (last alive) and it carried
        # the whole re-packed queue
        assert sup.device_evictions == 1
        assert sup.alive() == [1]
        assert sup.repacked_waves > 0
        kinds = [e.kind for e in sup.events]
        assert "fabric.evict" in kinds
        assert "fabric.evict_refused" in kinds
        log_kinds = [e["kind"] for e in backend.resilience_log()]
        assert "fabric.repack" in log_kinds

    def test_heartbeat_delays_move_cycles_not_fitness(self):
        clean_backend = _fabric(devices=2)
        clean = _fitness(clean_backend)
        delayed_backend = _fabric(
            devices=2, plan_text="seed=0,fabric.heartbeat_delay@1.0:500"
        )
        delayed = _fitness(delayed_backend)
        assert delayed == clean
        assert (
            delayed_backend.last_wall_cycles
            > clean_backend.last_wall_cycles
        )
        assert delayed_backend.fabric.device_evictions == 0

    def test_hard_fault_on_last_device_without_fallback_raises(self):
        backend = _fabric(devices=1, plan_text="seed=0,inax.wedge@1.0")
        with pytest.raises(DeviceFault):
            backend.evaluate(_genomes(_cfg()))
        backend.close()

    def test_hard_fault_on_last_device_degrades_with_fallback(self):
        clean = _fitness(_fabric(devices=1))
        backend = _fabric(
            devices=1,
            plan_text="seed=0,inax.wedge@1.0",
            fallback="cpu-fast",
        )
        chaotic = _fitness(backend)
        assert chaotic == clean
        assert backend.fallback_waves > 0
        assert backend.fabric.device_evictions == 0


class TestReplayability:
    def test_same_plan_yields_identical_logs_and_fitness(self):
        plan_text = (
            "seed=4,fabric.device_drop@0.4,fabric.heartbeat_delay@0.5:128"
        )
        logs, fitnesses = [], []
        for _ in range(2):
            backend = _fabric(devices=3, plan_text=plan_text)
            fitnesses.append(_fitness(backend))
            logs.append(backend.resilience_log())
        assert logs[0] == logs[1]
        assert logs[0]  # the chaos actually happened
        assert fitnesses[0] == fitnesses[1]

    def test_chaos_is_fitness_identical_across_probabilities(self):
        clean = _fitness(_fabric(devices=3))
        for probability in (0.2, 0.5, 1.0):
            backend = _fabric(
                devices=3,
                plan_text=f"seed=7,fabric.device_drop@{probability}",
            )
            assert _fitness(backend) == clean


class TestReporterColumns:
    def test_fabric_columns_extend_inax(self):
        backend = _fabric(devices=2)
        try:
            backend.evaluate(_genomes(_cfg()))
            columns = backend.reporter_columns()
        finally:
            backend.close()
        assert {
            "pack_eff",
            "devices_up",
            "device_evictions",
            "device_readmissions",
            "repacked_waves",
        } <= set(columns)
        assert columns["devices_up"] == 2.0
        # farm-wide occupancy, not device 0's
        assert 0.0 < columns["pack_eff"] <= 1.0
