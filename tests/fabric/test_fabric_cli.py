"""CLI surface for the fabric backend and the island-model run path."""

import json

from repro.cli import build_parser, main


def _read_trace(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def _manifest(rows):
    return next(row for row in rows if row.get("type") == "manifest")


class TestParser:
    def test_fabric_flag_defaults(self):
        args = build_parser().parse_args(["run", "--env", "cartpole"])
        assert args.devices == 1
        assert args.islands == 1
        assert args.migration_interval == 0
        assert args.migration_size == 0

    def test_fabric_backend_choice(self):
        args = build_parser().parse_args(
            ["run", "--env", "cartpole", "--backend", "fabric",
             "--devices", "4"]
        )
        assert args.backend == "fabric"
        assert args.devices == 4

    def test_resume_accepts_devices(self):
        args = build_parser().parse_args(
            ["resume", "--checkpoint", "x.json", "--env", "cartpole",
             "--backend", "fabric", "--devices", "2"]
        )
        assert args.devices == 2


class TestFabricRun:
    def test_devices_auto_upgrade_inax_to_fabric(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--env", "cartpole", "--population", "30",
             "--generations", "2", "--seed", "2", "--quiet",
             "--devices", "2", "--trace", str(trace)]
        )
        assert code in (0, 2)
        manifest = _manifest(_read_trace(trace))
        assert manifest["backend"] == "fabric"
        assert manifest["devices"] == 2
        assert manifest["supervisor"]["max_retries"] >= 0

    def test_devices_rejected_for_software_backends(self, capsys):
        code = main(
            ["run", "--env", "cartpole", "--backend", "cpu",
             "--devices", "2", "--quiet"]
        )
        assert code == 2
        assert "--devices needs the fabric backend" in capsys.readouterr().out

    def test_chaos_run_prints_resilience_summary(self, capsys):
        code = main(
            ["run", "--env", "cartpole", "--backend", "fabric",
             "--devices", "2", "--population", "30", "--generations", "2",
             "--seed", "2", "--quiet",
             "--faults", "seed=0,fabric.device_drop@1.0"]
        )
        assert code in (0, 2)
        out = capsys.readouterr().out
        assert "device evictions" in out
        assert "devices up" in out


class TestIslandRun:
    ARGS = [
        "run", "--env", "cartpole", "--population", "24",
        "--generations", "3", "--seed", "2", "--quiet",
        "--devices", "2", "--islands", "2",
        "--migration-interval", "1", "--migration-size", "1",
    ]

    def test_island_run_completes_and_reports(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(self.ARGS + ["--trace", str(trace)])
        assert code in (0, 2)
        out = capsys.readouterr().out
        assert "island" in out
        assert "migration:" in out
        manifest = _manifest(_read_trace(trace))
        assert manifest["command"] == "run"
        assert manifest["islands"] == 2
        assert manifest["migration_interval"] == 1

    def test_checkpoint_is_rejected_with_islands(self, capsys, tmp_path):
        code = main(
            self.ARGS + ["--checkpoint", str(tmp_path / "ckpt.json")]
        )
        assert code == 2
        assert "--checkpoint is not supported" in capsys.readouterr().out


class TestDoctorOnFabricTrace:
    def test_doctor_reconstructs_fabric_run_from_trace(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--env", "cartpole", "--backend", "fabric",
             "--devices", "2", "--population", "30", "--generations", "2",
             "--seed", "2", "--quiet",
             "--faults", "seed=0,fabric.device_drop@1.0",
             "--trace", str(trace)]
        )
        assert code in (0, 2)
        capsys.readouterr()
        # the trace has no health.sample markers, so the doctor must
        # rebuild the eviction history from fabric.gen / resilience.*
        doctor_code = main(["doctor", str(trace)])
        out = capsys.readouterr().out
        assert "[reconstructed from bare trace]" in out
        assert "fabric.instability" in out
        assert doctor_code != 0  # an eviction fired: not a clean bill
