"""Unit tests for farm topology and the wave-to-device LPT assigner."""

import pytest

from repro.fabric.topology import FarmTopology, assign_waves


class TestFarmTopology:
    def test_defaults_are_single_device(self):
        topo = FarmTopology()
        assert topo.devices == 1
        assert topo.islands == 1
        assert not topo.migrates(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"devices": 0},
            {"islands": 0},
            {"migration_interval": -1},
            {"migration_size": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FarmTopology(**kwargs)

    def test_island_homing_wraps_over_devices(self):
        topo = FarmTopology(devices=2, islands=5)
        assert [topo.island_device(i) for i in range(5)] == [0, 1, 0, 1, 0]

    def test_migration_barriers(self):
        topo = FarmTopology(
            devices=2, islands=2, migration_interval=3, migration_size=1
        )
        fires = [g for g in range(9) if topo.migrates(g)]
        assert fires == [2, 5, 8]

    def test_migration_disabled_without_all_three_knobs(self):
        base = dict(devices=2, migration_interval=2, migration_size=1)
        assert not FarmTopology(islands=1, **base).migrates(1)
        assert not FarmTopology(
            islands=2, devices=2, migration_interval=0, migration_size=1
        ).migrates(1)
        assert not FarmTopology(
            islands=2, devices=2, migration_interval=2, migration_size=0
        ).migrates(1)

    def test_to_dict_round_trips(self):
        topo = FarmTopology(devices=4, islands=4, migration_interval=5,
                            migration_size=2)
        assert FarmTopology(**topo.to_dict()) == topo


class TestAssignWaves:
    def test_heaviest_first_to_least_loaded(self):
        # costs 40, 30, 20, 10 over two devices: LPT gives {40,10} / {30,20}
        queues = assign_waves([40.0, 30.0, 20.0, 10.0], [0, 1])
        assert queues == {0: [0, 3], 1: [1, 2]}

    def test_ties_break_by_ordinal_then_device_id(self):
        queues = assign_waves([1.0, 1.0, 1.0, 1.0], [0, 1])
        assert queues == {0: [0, 2], 1: [1, 3]}

    def test_per_device_lists_stay_in_ordinal_order(self):
        queues = assign_waves([5.0, 1.0, 9.0, 2.0, 7.0], [0, 1, 2])
        for ordinals in queues.values():
            assert ordinals == sorted(ordinals)

    def test_pure_function_of_inputs(self):
        costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        assert assign_waves(costs, [2, 0, 1]) == assign_waves(costs, [0, 1, 2])

    def test_survivor_subset_is_the_repack_rule(self):
        costs = [4.0, 3.0, 2.0, 1.0]
        degraded = assign_waves(costs, [1])
        assert degraded == {1: [0, 1, 2, 3]}

    def test_no_alive_devices_raises(self):
        with pytest.raises(ValueError):
            assign_waves([1.0], [])
