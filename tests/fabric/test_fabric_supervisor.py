"""Unit tests for the device eviction ladder (FabricSupervisor)."""

import pytest

from repro.fabric.supervisor import (
    EVICTED,
    HEALTHY,
    PROBATION,
    FabricSupervisor,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.injectors import DeviceFaultInjector
from repro.resilience.supervisor import SupervisorConfig


def _supervisor(devices=2, plan_text=None, **config_overrides):
    config = SupervisorConfig(**config_overrides) if config_overrides else None
    injector = (
        DeviceFaultInjector(FaultPlan.parse(plan_text))
        if plan_text is not None
        else None
    )
    return FabricSupervisor(devices, config=config, injector=injector)


class TestQuietPath:
    def test_no_injector_probes_always_pass(self):
        sup = _supervisor(devices=3)
        sup.begin_generation(0)
        assert all(sup.probe(0, d) for d in range(3))
        assert sup.alive() == [0, 1, 2]
        assert sup.counters() == {
            "devices_up": 3.0,
            "device_evictions": 0.0,
            "device_readmissions": 0.0,
            "repacked_waves": 0.0,
        }

    def test_invalid_farm_size(self):
        with pytest.raises(ValueError):
            FabricSupervisor(0)


class TestEvictionLadder:
    def test_persistent_drops_evict_after_max_retries(self):
        sup = _supervisor(devices=2, plan_text="seed=0,fabric.device_drop@1.0")
        sup.begin_generation(0)
        assert sup.probe(0, 0) is False
        state = sup.states[0]
        assert state.status == EVICTED
        assert state.evicted_at == 0
        # misses walked the full ladder: max_retries + 1 consecutive
        assert state.misses == sup.config.max_retries + 1
        assert sup.alive() == [1]
        assert sup.device_evictions == 1
        assert [e.kind for e in sup.events] == ["fabric.evict"]

    def test_last_alive_device_is_never_evicted(self):
        sup = _supervisor(devices=1, plan_text="seed=0,fabric.device_drop@1.0")
        sup.begin_generation(0)
        # the refusal keeps the probe green and resets the miss count
        assert sup.probe(0, 0) is True
        assert sup.alive() == [0]
        assert sup.states[0].misses == 0
        assert [e.kind for e in sup.events] == ["fabric.evict_refused"]

    def test_hard_fail_evicts_immediately(self):
        sup = _supervisor(devices=2)
        assert sup.fail(3, 1, reason="DeviceFault") is True
        assert sup.states[1].status == EVICTED
        assert sup.alive() == [0]
        assert sup.events[0].details["reason"] == "DeviceFault"

    def test_hard_fail_on_last_device_is_refused(self):
        sup = _supervisor(devices=1)
        assert sup.fail(0, 0, reason="DeviceFault") is False
        assert sup.alive() == [0]


class TestHeartbeatPenalties:
    def test_delay_burns_cycles_but_keeps_device_alive(self):
        sup = _supervisor(
            devices=2, plan_text="seed=0,fabric.heartbeat_delay@1.0:100"
        )
        sup.begin_generation(0)
        assert sup.probe(0, 0) is True
        assert sup.penalty_cycles(0) == 100
        assert sup.alive() == [0, 1]

    def test_penalty_backs_off_with_miss_count(self):
        sup = _supervisor(
            devices=2,
            plan_text=(
                "seed=0,fabric.heartbeat_delay@1.0:100,"
                "fabric.device_drop@1.0"
            ),
        )
        sup.begin_generation(0)
        assert sup.probe(0, 0) is False  # dropped all the way to eviction
        # misses 0, 1, 2 before the evicting draw: 100 + 200 + 400
        assert sup.penalty_cycles(0) == 100 + 200 + 400

    def test_begin_generation_resets_penalties(self):
        sup = _supervisor(
            devices=2, plan_text="seed=0,fabric.heartbeat_delay@1.0:64"
        )
        sup.begin_generation(0)
        sup.probe(0, 0)
        assert sup.penalty_cycles(0) == 64
        sup.begin_generation(1)
        assert sup.penalty_cycles(0) == 0


class TestProbationaryReadmission:
    def test_evicted_device_returns_through_probation(self):
        sup = _supervisor(devices=2)
        assert sup.fail(0, 1, reason="DeviceFault") is True
        # next generation: the probe is clean (no injector), so the
        # device is re-admitted on probation...
        sup.begin_generation(1)
        assert sup.states[1].status == PROBATION
        assert sup.alive() == [0, 1]
        assert sup.device_readmissions == 1
        kinds = [e.kind for e in sup.events]
        assert kinds == ["fabric.evict", "fabric.readmit"]
        assert sup.events[-1].details["sat_out"] == 1
        # ...and surviving the full generation restores healthy
        sup.begin_generation(2)
        assert sup.states[1].status == HEALTHY

    def test_wedged_device_stays_out(self):
        sup = _supervisor(devices=2, plan_text="seed=0,fabric.device_drop@1.0")
        sup.begin_generation(0)
        sup.probe(0, 0)
        assert sup.alive() == [1]
        for generation in (1, 2, 3):
            sup.begin_generation(generation)
            assert sup.states[0].status == EVICTED
        assert sup.device_readmissions == 0

    def test_probation_waits_the_configured_generations(self):
        sup = _supervisor(devices=2, probation_generations=3)
        sup.fail(0, 1, reason="DeviceFault")
        sup.begin_generation(1)
        sup.begin_generation(2)
        assert sup.states[1].status == EVICTED
        sup.begin_generation(3)
        assert sup.states[1].status == PROBATION
