"""Fabric health detectors, live and reconstructed from bare traces."""

from repro.obs.detectors import (
    EvictionStormDetector,
    FabricInstabilityDetector,
    GenerationSample,
    HealthConfig,
    build_detectors,
)
from repro.obs.doctor import diagnose, samples_from_trace


def _sample(generation, up, evictions, **kwargs):
    return GenerationSample(
        generation=generation,
        devices_up=float(up),
        device_evictions=float(evictions),
        **kwargs,
    )


class TestFabricInstabilityDetector:
    def test_quiet_farm_fires_nothing(self):
        detector = FabricInstabilityDetector(HealthConfig())
        for generation in range(5):
            assert detector.observe(_sample(generation, 4, 0)) == []

    def test_eviction_delta_warns(self):
        detector = FabricInstabilityDetector(HealthConfig())
        assert detector.observe(_sample(0, 4, 0)) == []
        events = detector.observe(_sample(1, 3, 1))
        assert [e.severity for e in events] == ["warning"]
        # the counter is cumulative: no new eviction, no new event
        assert detector.observe(_sample(2, 3, 1)) == []

    def test_collapse_to_single_device_is_critical_once(self):
        detector = FabricInstabilityDetector(HealthConfig())
        detector.observe(_sample(0, 3, 0))
        events = detector.observe(_sample(1, 1, 2))
        severities = sorted(e.severity for e in events)
        assert severities == ["critical", "warning"]
        # still degraded: fired on the transition only
        assert detector.observe(_sample(2, 1, 2)) == []
        # recovery re-arms the transition
        detector.observe(_sample(3, 3, 2))
        events = detector.observe(_sample(4, 1, 4))
        assert any(e.severity == "critical" for e in events)

    def test_single_device_farm_never_degrades(self):
        detector = FabricInstabilityDetector(HealthConfig())
        for generation in range(4):
            assert detector.observe(_sample(generation, 1, 0)) == []

    def test_absent_fields_skip(self):
        detector = FabricInstabilityDetector(HealthConfig())
        assert detector.observe(GenerationSample(generation=0)) == []


class TestEvictionStormDetector:
    def test_spread_out_evictions_stay_quiet(self):
        config = HealthConfig(
            eviction_storm_window=3, eviction_storm_count=3
        )
        detector = EvictionStormDetector(config)
        cumulative = 0
        for generation in range(9):
            if generation % 4 == 0:
                cumulative += 1
            assert detector.observe(_sample(generation, 4, cumulative)) == []

    def test_clustered_evictions_fire_once(self):
        config = HealthConfig(
            eviction_storm_window=5, eviction_storm_count=3
        )
        detector = EvictionStormDetector(config)
        assert detector.observe(_sample(0, 8, 1)) == []
        assert detector.observe(_sample(1, 7, 2)) == []
        events = detector.observe(_sample(2, 6, 3))
        assert [e.severity for e in events] == ["critical"]
        # still storming: transition-fired, not repeated
        assert detector.observe(_sample(3, 5, 4)) == []

    def test_registered_in_default_registry(self):
        names = {d.name for d in build_detectors(HealthConfig())}
        assert {"fabric.instability", "fabric.eviction_storm"} <= names


def _fabric_gen_row(generation, up, evictions, readmissions=0, repacked=0):
    return {
        "type": "span",
        "name": "fabric.gen",
        "attrs": {
            "site": f"gen={generation}",
            "generation": generation,
            "wall_cycles": 1000.0,
            "devices_up": float(up),
            "device_evictions": float(evictions),
            "device_readmissions": float(readmissions),
            "repacked_waves": float(repacked),
        },
    }


def _phase_row(generation, population=12):
    return {
        "type": "span",
        "name": "phase.evaluate",
        "dur": 0.01,
        "attrs": {"generation": generation, "population": population},
    }


class TestDoctorReconstruction:
    def test_fabric_gen_markers_rebuild_samples(self):
        rows = [
            _phase_row(0), _fabric_gen_row(0, 2, 0),
            _phase_row(1), _fabric_gen_row(1, 1, 1, repacked=2),
        ]
        samples, reconstructed = samples_from_trace(rows)
        assert reconstructed
        assert [s.generation for s in samples] == [0, 1]
        assert samples[0].devices_up == 2.0
        assert samples[1].device_evictions == 1.0
        assert samples[1].repacked_waves == 2.0
        assert samples[0].population_size == 12

    def test_migration_skip_markers_accumulate(self):
        rows = [
            _phase_row(0),
            _phase_row(1),
            {
                "type": "span",
                "name": "resilience.fabric.migration_skip",
                "attrs": {"site": "gen=1|edge=0->1"},
            },
            {
                "type": "span",
                "name": "resilience.fabric.migration_skip",
                "attrs": {"site": "gen=1|edge=1->0"},
            },
        ]
        samples, _ = samples_from_trace(rows)
        assert samples[0].migrations_skipped is None
        assert samples[1].migrations_skipped == 2.0

    def test_diagnose_fires_fabric_detectors_from_bare_trace(self):
        rows = [_phase_row(0), _fabric_gen_row(0, 4, 0)]
        for generation in (1, 2, 3):
            rows.append(_phase_row(generation))
            rows.append(
                _fabric_gen_row(generation, 4 - generation, generation)
            )
        diagnosis = diagnose(rows)
        assert diagnosis.reconstructed
        detectors = {e.detector for e in diagnosis.report.events}
        assert "fabric.instability" in detectors
        assert "fabric.eviction_storm" in detectors
        assert diagnosis.report.verdict == "critical"
