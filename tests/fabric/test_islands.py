"""Island-model determinism: migration, device loss, key disjointness."""

from repro.fabric.islands import KEY_STRIDE, IslandModel, island_seed
from repro.fabric.topology import FarmTopology
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig
from repro.resilience.faults import FaultPlan


def _model(topology, plan_text=None, seed=3, population=12, generations=None):
    return IslandModel(
        "cartpole",
        topology,
        neat_config=NEATConfig(population_size=population),
        inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
        seed=seed,
        fault_plan=(
            FaultPlan.parse(plan_text) if plan_text is not None else None
        ),
    )


def _trajectory(result):
    return [
        (stats.best_fitness, stats.mean_fitness) for stats in result.history
    ]


class TestSeeding:
    def test_island_seeds_are_distinct_pure_functions(self):
        seeds = [island_seed(3, i) for i in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [island_seed(3, i) for i in range(8)]

    def test_genome_keys_never_collide_across_islands(self):
        model = _model(FarmTopology(devices=2, islands=3))
        keys = [g.key for pop in model.islands for g in pop.population]
        assert len(keys) == len(set(keys))
        for index, pop in enumerate(model.islands):
            for genome in pop.population:
                assert index * KEY_STRIDE <= genome.key < (
                    (index + 1) * KEY_STRIDE
                )

    def test_population_splits_with_remainder_to_first_islands(self):
        model = _model(FarmTopology(devices=2, islands=3), population=13)
        assert [len(p.population) for p in model.islands] == [5, 4, 4]


class TestMigration:
    TOPO = FarmTopology(
        devices=2, islands=2, migration_interval=2, migration_size=1
    )

    def test_same_seed_runs_are_identical(self):
        results = [
            _model(self.TOPO).run(max_generations=4) for _ in range(2)
        ]
        assert _trajectory(results[0]) == _trajectory(results[1])
        assert results[0].best_fitness == results[1].best_fitness

    def test_ring_exchange_fires_at_barriers(self):
        model = _model(self.TOPO)
        result = model.run(max_generations=4)
        # barriers after generations 1 and 3 -> two exchanges of 2 edges
        # (unless the run solved early at the first barrier)
        assert model.migrations in (2, 4)
        assert model.migrations_skipped == 0
        assert result.generations >= 2

    def test_corrupt_edges_skip_and_log(self):
        model = _model(
            self.TOPO, plan_text="seed=0,fabric.migration_corrupt@1.0"
        )
        model.run(max_generations=4)
        assert model.migrations == 0
        assert model.migrations_skipped > 0
        events = [e for e in model.events
                  if e.kind == "fabric.migration_skip"]
        assert events
        assert all(e.details["reason"] == "corrupt" for e in events)

    def test_skipped_migration_equals_no_migration(self):
        """Skips never perturb island RNG streams: a run whose every
        edge is corrupt is trajectory-identical to a migration-free
        run of the same seed."""
        isolated = _model(
            FarmTopology(devices=2, islands=2)
        ).run(max_generations=4)
        corrupted = _model(
            self.TOPO, plan_text="seed=0,fabric.migration_corrupt@1.0"
        ).run(max_generations=4)
        assert _trajectory(corrupted) == _trajectory(isolated)


class TestMidMigrationDeviceLoss:
    def test_dead_home_device_skips_both_ring_edges(self):
        topo = FarmTopology(
            devices=2, islands=2, migration_interval=1, migration_size=1
        )
        model = _model(topo, plan_text="seed=0,fabric.device_drop@1.0")
        result = model.run(max_generations=3)
        # device 0 is evicted (device 1's eviction is refused), so
        # island 0's home is down and every edge touches island 0:
        # the whole ring skips at every barrier, yet the run completes
        assert model.backend.fabric.alive() == [1]
        assert model.migrations == 0
        assert model.migrations_skipped == 2 * result.generations
        skip_reasons = {
            e.details["reason"]
            for e in model.events
            if e.kind == "fabric.migration_skip"
        }
        assert skip_reasons == {"device_down"}
        assert result.best_fitness > 0

    def test_device_loss_replays_byte_identically(self):
        topo = FarmTopology(
            devices=2, islands=2, migration_interval=1, migration_size=1
        )
        logs = []
        for _ in range(2):
            model = _model(
                topo, plan_text="seed=5,fabric.device_drop@0.6"
            )
            model.run(max_generations=3)
            logs.append(model.resilience_log())
        assert logs[0] == logs[1]
        assert logs[0]


class TestResult:
    def test_result_carries_per_island_histories(self):
        model = _model(FarmTopology(devices=2, islands=3))
        result = model.run(max_generations=2)
        assert len(result.island_histories) == 3
        assert all(history for history in result.island_histories)
        assert 0 <= result.best_island < 3
        champion = max(
            (g for pop in model.islands for g in pop.population
             if g.fitness is not None),
            key=lambda g: g.fitness,
        )
        assert result.best_fitness >= champion.fitness
