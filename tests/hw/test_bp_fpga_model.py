"""Unit tests for the BP-on-FPGA (FA3C-class) accelerator model."""

import pytest

from repro.hw.bp_fpga_model import (
    BPAcceleratorSpec,
    estimate_bp_accelerator_resources,
)
from repro.hw.fpga_model import ZCU104
from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN


class TestSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"layer_sizes": (4,)},
            {"layer_sizes": (4, 2), "batch_size": 0},
            {"layer_sizes": (4, 2), "num_macs": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            BPAcceleratorSpec(**kwargs)

    def test_weight_count(self):
        spec = BPAcceleratorSpec(layer_sizes=(4, 8, 2))
        assert spec.num_weights == 4 * 8 + 8 + 8 * 2 + 2

    def test_activation_words_scale_with_batch(self):
        small = BPAcceleratorSpec(layer_sizes=(4, 8, 2), batch_size=8)
        large = BPAcceleratorSpec(layer_sizes=(4, 8, 2), batch_size=64)
        assert large.activation_words == 8 * small.activation_words

    def test_onchip_state_is_4x_weights_plus_activations(self):
        spec = BPAcceleratorSpec(layer_sizes=(4, 8, 2), batch_size=16)
        assert spec.onchip_words == 4 * spec.num_weights + 16 * (4 + 8 + 2)


class TestTableVIClaim:
    """'The BP step costs more buffer ... which could become
    bottleneck when the NN scales up' (Table VI discussion, §VII)."""

    def test_small_policy_fits(self):
        spec = BPAcceleratorSpec(
            layer_sizes=(4, *SMALL_HIDDEN, 2), batch_size=128, num_macs=256
        )
        assert estimate_bp_accelerator_resources(spec).fits(ZCU104)

    def test_large_policy_blows_the_device(self):
        spec = BPAcceleratorSpec(
            layer_sizes=(4, *LARGE_HIDDEN, 2), batch_size=128, num_macs=256
        )
        res = estimate_bp_accelerator_resources(spec)
        assert not res.fits(ZCU104)
        assert res.utilization(ZCU104)["BRAM"] > 1.0  # the buffer wall

    def test_bp_state_dwarfs_an_evolved_individuals(self):
        # per-network resident state: the BP trainer's words vs the
        # per-PU buffer an evolved NEAT individual needs on INAX
        from repro.inax.synthetic import synthetic_population

        spec = BPAcceleratorSpec(
            layer_sizes=(8, *SMALL_HIDDEN, 4), batch_size=32
        )
        evolved = synthetic_population(num_individuals=10, seed=1)
        per_individual = max(
            c.weight_buffer_words + c.value_buffer_words for c in evolved
        )
        assert spec.onchip_words > 20 * per_individual

    def test_buffer_grows_with_batch_but_macs_do_not(self):
        small = estimate_bp_accelerator_resources(
            BPAcceleratorSpec(layer_sizes=(4, 64, 2), batch_size=8)
        )
        large = estimate_bp_accelerator_resources(
            BPAcceleratorSpec(layer_sizes=(4, 64, 2), batch_size=1024)
        )
        assert large.bram36 > small.bram36
        assert large.dsps == small.dsps
