"""Unit tests for the CLAN distributed-platform model."""

import pytest

from repro.hw.clan_model import (
    CLANConfig,
    CLANModel,
    workers_needed_for_speedup,
)
from repro.hw.workload import GenerationWorkload, IndividualWork
from repro.inax.synthetic import synthetic_population


def _generation(n=40, steps=50, seed=0):
    pop = synthetic_population(num_individuals=n, seed=seed)
    return GenerationWorkload(
        individuals=[IndividualWork.from_config(c, steps) for c in pop]
    )


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            CLANConfig(num_workers=0)
        with pytest.raises(ValueError):
            CLANConfig(edge_slowdown=0)


class TestCLANModel:
    def test_more_workers_faster_evaluate(self):
        gen = _generation()
        t1 = CLANModel(CLANConfig(num_workers=1)).generation_times(gen)
        t8 = CLANModel(CLANConfig(num_workers=8)).generation_times(gen)
        assert t8.evaluate < t1.evaluate

    def test_edge_slowdown_scales_compute(self):
        gen = _generation()
        slow = CLANModel(
            CLANConfig(num_workers=1, edge_slowdown=8.0)
        ).generation_times(gen)
        fast = CLANModel(
            CLANConfig(num_workers=1, edge_slowdown=2.0)
        ).generation_times(gen)
        assert slow.evaluate > 3.5 * fast.evaluate

    def test_communication_grows_with_workers(self):
        gen = _generation()
        small = CLANModel(CLANConfig(num_workers=2)).communication_seconds(gen)
        large = CLANModel(CLANConfig(num_workers=32)).communication_seconds(gen)
        assert large > small

    def test_scaling_saturates(self):
        # past some worker count, communication flattens the speedup
        gen = _generation(n=64, steps=20)
        model = CLANModel(
            CLANConfig(num_workers=1, network_latency_seconds=5e-3)
        )
        scaling = model.scaling_efficiency(gen, max_workers=256)
        speedups = [s for _, s in scaling]
        # speedup is sublinear at the tail
        workers_tail, speedup_tail = scaling[-1]
        assert speedup_tail < workers_tail * 0.5

    def test_evolve_runs_on_coordinator_at_edge_rate(self):
        gen = _generation()
        clan = CLANModel(CLANConfig(num_workers=4, edge_slowdown=4.0))
        desktop = clan.host.generation_times(gen)
        times = clan.generation_times(gen)
        assert times.evolve == pytest.approx(4.0 * desktop.evolve)

    def test_energy_counts_all_nodes(self):
        gen = _generation()
        small = CLANModel(CLANConfig(num_workers=2))
        large = CLANModel(CLANConfig(num_workers=16))
        t_small = small.generation_times(gen)
        t_large = large.generation_times(gen)
        # the big cluster is faster but each second costs 17 nodes
        assert large.energy_joules(t_large) > 0
        power_small = small.energy_joules(t_small) / t_small.total
        power_large = large.energy_joules(t_large) / t_large.total
        assert power_large > power_small


class TestWorkersNeeded:
    def test_reachable_speedup(self):
        gen = _generation()
        workers = workers_needed_for_speedup(CLANModel(), gen, 4.0)
        assert workers is not None
        assert workers >= 4  # cannot beat ideal linear scaling

    def test_unreachable_speedup(self):
        gen = _generation(n=8, steps=2)
        # tiny workload + huge latency: communication-bound cluster
        model = CLANModel(
            CLANConfig(num_workers=1, network_latency_seconds=1.0)
        )
        assert workers_needed_for_speedup(model, gen, 1000.0) is None
