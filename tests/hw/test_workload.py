"""Unit tests for workload accounting."""

from repro.hw.workload import GenerationWorkload, IndividualWork, RunWorkload
from repro.inax.synthetic import synthetic_population


def _work(macs=10, nodes=5, steps=3):
    return IndividualWork(
        macs=macs,
        nodes=nodes,
        layers=2,
        config_words=macs + 2 * nodes,
        num_inputs=8,
        num_outputs=4,
        steps=steps,
    )


def test_from_config():
    hw = synthetic_population(num_individuals=1, seed=0)[0]
    work = IndividualWork.from_config(hw, steps=7)
    assert work.macs == hw.num_connections
    assert work.nodes == hw.num_nodes
    assert work.layers == hw.num_layers
    assert work.config_words == hw.config_words
    assert work.steps == 7


def test_generation_totals():
    gen = GenerationWorkload(individuals=[_work(10, 5, 3), _work(20, 8, 2)])
    assert gen.population_size == 2
    assert gen.total_env_steps == 5
    assert gen.total_inference_macs == 10 * 3 + 20 * 2
    assert gen.total_inference_nodes == 5 * 3 + 8 * 2
    assert gen.total_config_words == (10 + 10) + (20 + 16)


def test_run_totals():
    gen_a = GenerationWorkload(individuals=[_work(steps=3)])
    gen_b = GenerationWorkload(individuals=[_work(steps=4), _work(steps=1)])
    run = RunWorkload(generations=[gen_a, gen_b])
    assert run.num_generations == 2
    assert run.total_env_steps == 8
    assert run.total_individuals == 3
    assert (
        run.total_inference_macs
        == gen_a.total_inference_macs + gen_b.total_inference_macs
    )
