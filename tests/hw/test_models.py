"""Unit tests for the CPU/GPU/FPGA platform cost models."""

import pytest

from repro.hw import calibration as cal
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.fpga_model import (
    INAXPlatformModel,
    ZCU104,
    estimate_fpga_power,
    estimate_inax_resources,
)
from repro.hw.gpu_model import GPUModel
from repro.hw.workload import GenerationWorkload, IndividualWork
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.synthetic import synthetic_population


def _generation(n=5, steps=10, seed=0):
    pop = synthetic_population(num_individuals=n, seed=seed)
    gen = GenerationWorkload(
        individuals=[IndividualWork.from_config(c, steps) for c in pop]
    )
    return pop, gen


class TestPhaseTimes:
    def test_total_and_fractions(self):
        t = PhaseTimes(evaluate=3.0, env=1.0, createnet=0.5, evolve=0.5)
        assert t.total == 5.0
        fr = t.fractions()
        assert fr["evaluate"] == pytest.approx(0.6)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_merge(self):
        a = PhaseTimes(evaluate=1.0)
        a.merge(PhaseTimes(evaluate=2.0, env=1.0))
        assert a.evaluate == 3.0 and a.env == 1.0


class TestCPUModel:
    def test_evaluate_scales_with_macs(self):
        _, small = _generation(steps=5)
        _, large = _generation(steps=50)
        model = CPUModel()
        assert (
            model.generation_times(large).evaluate
            > model.generation_times(small).evaluate
        )

    def test_evaluate_dominates_for_neat_workloads(self):
        # the Fig 1(b) shape: evaluate + env >> evolve
        _, gen = _generation(n=50, steps=100)
        times = CPUModel().generation_times(gen)
        assert times.evaluate + times.env > 10 * (times.evolve + times.createnet)

    def test_env_step_cost_configurable(self):
        _, gen = _generation()
        cheap = CPUModel(seconds_per_env_step=1e-6)
        pricey = CPUModel(seconds_per_env_step=1e-4)
        assert (
            pricey.generation_times(gen).env
            == pytest.approx(100 * cheap.generation_times(gen).env)
        )


class TestGPUModel:
    def test_gpu_evaluate_slower_than_cpu(self):
        # the paper's headline E3-GPU result: dispatch-bound, slower
        # than the interpreted CPU baseline
        _, gen = _generation(n=20, steps=20)
        cpu = CPUModel()
        gpu = GPUModel(host=cpu)
        assert (
            gpu.generation_times(gen).evaluate
            > cpu.generation_times(gen).evaluate
        )

    def test_host_phases_match_cpu(self):
        _, gen = _generation()
        cpu = CPUModel()
        gpu = GPUModel(host=cpu)
        cpu_times = cpu.generation_times(gen)
        gpu_times = gpu.generation_times(gen)
        assert gpu_times.env == cpu_times.env
        assert gpu_times.evolve == cpu_times.evolve
        assert gpu_times.createnet == cpu_times.createnet

    def test_dispatch_dominates(self):
        _, gen = _generation(n=10, steps=10)
        base = GPUModel().generation_times(gen).evaluate
        no_dispatch = GPUModel(dispatch_seconds=0.0).generation_times(gen)
        assert no_dispatch.evaluate < base / 5


class TestFPGAResources:
    def test_paper_config_fits_zcu104(self):
        # §VI-C: PU=50, PE=output nodes (<=4)
        res = estimate_inax_resources(num_pus=50, num_pes_per_pu=4)
        assert res.fits(ZCU104)
        util = res.utilization(ZCU104)
        assert all(0 < v <= 1 for v in util.values())

    def test_bigger_config_uses_more(self):
        small = estimate_inax_resources(10, 2)
        large = estimate_inax_resources(100, 4)
        assert large.dsps > small.dsps
        assert large.luts > small.luts
        assert large.bram36 > small.bram36

    def test_dsp_count_is_pe_count(self):
        res = estimate_inax_resources(num_pus=7, num_pes_per_pu=3)
        assert res.dsps == 21

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            estimate_inax_resources(0, 1)

    def test_power_scales_with_resources(self):
        small = estimate_fpga_power(estimate_inax_resources(10, 1))
        large = estimate_fpga_power(estimate_inax_resources(200, 4))
        assert 0 < small < large
        assert large < cal.GPU_PLATFORM_POWER_WATTS  # sanity


class TestINAXPlatformModel:
    def test_evaluate_seconds_from_cycles(self):
        pop, gen = _generation(n=10, steps=10)
        inax_cfg = INAXConfig(num_pus=5, num_pes_per_pu=2)
        report = schedule_generation(inax_cfg, pop, [10] * 10)
        model = INAXPlatformModel(inax_cfg, clock_hz=1e8)
        assert model.evaluate_seconds(report) == pytest.approx(
            report.total_cycles / 1e8
        )

    def test_generation_times_split(self):
        pop, gen = _generation(n=10, steps=10)
        inax_cfg = INAXConfig(num_pus=5, num_pes_per_pu=2)
        report = schedule_generation(inax_cfg, pop, [10] * 10)
        cpu = CPUModel()
        model = INAXPlatformModel(inax_cfg, host=cpu)
        times = model.generation_times(gen, report)
        host = cpu.generation_times(gen)
        assert times.env == host.env
        assert times.evolve == host.evolve
        assert times.evaluate < host.evaluate  # the acceleration

    def test_default_power_estimated_from_resources(self):
        model = INAXPlatformModel(INAXConfig(num_pus=50, num_pes_per_pu=4))
        assert 0 < model.fpga_power_watts < 20


class TestCalibrationSanity:
    def test_power_ordering(self):
        assert (
            cal.FPGA_POWER_WATTS
            < cal.EDGE_CPU_POWER_WATTS
            < cal.CPU_POWER_WATTS
            < cal.GPU_PLATFORM_POWER_WATTS
        )

    def test_evaluate_to_env_ratio_supports_fig1b(self):
        # a typical evolved net (10 nodes / 20 connections) must cost
        # ~an order of magnitude more than an env step, or NEAT's
        # evaluate-dominated profile cannot emerge
        per_inference = (
            cal.CPU_SECONDS_PER_ACTIVATE_CALL
            + 20 * cal.CPU_SECONDS_PER_MAC
            + 10 * cal.CPU_SECONDS_PER_NODE
        )
        assert per_inference > 10 * cal.CPU_SECONDS_PER_ENV_STEP

    def test_env_table_covers_suite(self):
        from repro.envs.registry import ENV_SUITE

        for spec in ENV_SUITE:
            assert spec.name in cal.ENV_STEP_SECONDS


class TestOverlapIOResources:
    def test_double_buffering_costs_bram(self):
        single = estimate_inax_resources(10, 2)
        double = estimate_inax_resources(10, 2, overlap_io=True)
        assert double.bram36 > single.bram36
        assert double.dsps == single.dsps  # compute unchanged
        assert double.luts == single.luts
