"""Unit tests for the phase profiler."""

import time

import pytest

from repro.core.profiler import PhaseProfiler


def test_record_accumulates():
    p = PhaseProfiler()
    p.record("evaluate", 1.0)
    p.record("evaluate", 2.0)
    p.record("evolve", 1.0)
    assert p.seconds("evaluate") == 3.0
    assert p.total == 4.0


def test_negative_duration_rejected():
    p = PhaseProfiler()
    with pytest.raises(ValueError):
        p.record("x", -1.0)


def test_fractions():
    p = PhaseProfiler()
    p.record("a", 3.0)
    p.record("b", 1.0)
    fr = p.fractions()
    assert fr["a"] == pytest.approx(0.75)
    assert sum(fr.values()) == pytest.approx(1.0)


def test_fractions_empty():
    assert PhaseProfiler().fractions() == {}


def test_context_manager_times_block():
    p = PhaseProfiler()
    with p.phase("sleepy"):
        time.sleep(0.01)
    assert p.seconds("sleepy") >= 0.005


def test_context_manager_records_on_exception():
    p = PhaseProfiler()
    with pytest.raises(RuntimeError):
        with p.phase("boom"):
            raise RuntimeError("x")
    assert "boom" in p.phases


def test_merge_and_reset():
    a, b = PhaseProfiler(), PhaseProfiler()
    a.record("x", 1.0)
    b.record("x", 2.0)
    b.record("y", 3.0)
    a.merge(b)
    assert a.seconds("x") == 3.0 and a.seconds("y") == 3.0
    a.reset()
    assert a.total == 0.0


def test_phases_returns_copy():
    p = PhaseProfiler()
    p.record("x", 1.0)
    snapshot = p.phases
    snapshot["x"] = 99.0
    assert p.seconds("x") == 1.0
