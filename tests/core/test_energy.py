"""Unit tests for energy accounting."""

import pytest

from repro.core.energy import (
    PLATFORM_POWER,
    PhasePower,
    energy_report,
)
from repro.hw import calibration as cal
from repro.hw.cpu_model import PhaseTimes


def test_energy_is_power_times_time():
    times = PhaseTimes(evaluate=2.0, env=1.0, createnet=0.5, evolve=0.5)
    power = PhasePower(evaluate=10.0, env=5.0, createnet=5.0, evolve=5.0)
    report = energy_report(times, power)
    assert report.evaluate == 20.0
    assert report.env == 5.0
    assert report.total == 20.0 + 5.0 + 2.5 + 2.5


def test_preset_lookup():
    times = PhaseTimes(evaluate=1.0)
    report = energy_report(times, "cpu")
    assert report.evaluate == cal.CPU_POWER_WATTS


def test_unknown_preset():
    with pytest.raises(KeyError, match="unknown power preset"):
        energy_report(PhaseTimes(), "tpu")


def test_presets_cover_platforms():
    assert {"cpu", "gpu", "inax", "inax-edge"} <= set(PLATFORM_POWER)


def test_gpu_preset_prices_evaluate_higher():
    times = PhaseTimes(evaluate=1.0, env=1.0)
    cpu = energy_report(times, "cpu")
    gpu = energy_report(times, "gpu")
    assert gpu.evaluate > cpu.evaluate
    assert gpu.env == cpu.env  # env stays on the CPU


def test_inax_preset_prices_evaluate_lower():
    times = PhaseTimes(evaluate=1.0)
    cpu = energy_report(times, "cpu")
    inax = energy_report(times, "inax")
    assert inax.evaluate < cpu.evaluate / 5


def test_edge_preset_cheapest_host():
    times = PhaseTimes(env=1.0, evolve=1.0)
    desktop = energy_report(times, "inax")
    edge = energy_report(times, "inax-edge")
    assert edge.total < desktop.total


def test_fractions():
    report = energy_report(
        PhaseTimes(evaluate=3.0, env=1.0),
        PhasePower(evaluate=1.0, env=1.0, createnet=1.0, evolve=1.0),
    )
    fr = report.fractions()
    assert fr["evaluate"] == pytest.approx(0.75)
    assert sum(fr.values()) == pytest.approx(1.0)
