"""Resume must not restart with cold structural caches.

``load_checkpoint`` restores the population but no cache state; before
the fix, the first post-resume generation silently re-decoded (or
re-compiled) every genome, so "resumed" benchmark numbers lied and the
decode/compile phase paid a full-population cold start.  The resume
path now warms the structural caches from the restored population, and
this roundtrip pins the contract:

* fitness stays bit-identical to the continuous run (warming is purely
  a cache effect);
* the first post-resume generation misses **zero** times — its genomes
  are exactly the ones the caches were warmed from;
* the post-resume hit rate is at least the continuous run's over the
  same generations (warm entries land as ``warmed``, never as
  hits/misses, so the rates compare honestly).
"""

import numpy as np

from repro.core.backends import CompiledCPUBackend, FastCPUBackend
from repro.neat.checkpoint import load_checkpoint, save_checkpoint
from repro.neat.config import NEATConfig
from repro.neat.population import Population

SPLIT = 3  # generations before the checkpoint
TAIL = 2  # generations after it


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=8)


def _info(backend, kind):
    return (
        backend.compile_cache_info()
        if kind == "compile"
        else backend.cache_info()
    )


def _run(backend, population, generations):
    for _ in range(generations):
        population.advance(backend.evaluate)


def _roundtrip(tmp_path, backend_cls, kind):
    path = str(tmp_path / "run.json")

    # continuous reference: SPLIT + TAIL generations on one backend
    continuous = backend_cls("cartpole", _cfg(), base_seed=1)
    population = Population(_cfg(), seed=7)
    try:
        _run(continuous, population, SPLIT)
        save_checkpoint(population, path)
        before_tail = _info(continuous, kind)
        _run(continuous, population, TAIL)
        continuous_tail = _info(continuous, kind)
    finally:
        continuous.close()
    continuous_history = [row.best_fitness for row in population.history]
    tail_hits = continuous_tail["hits"] - before_tail["hits"]
    tail_misses = continuous_tail["misses"] - before_tail["misses"]

    # resumed run: fresh backend, caches warmed from the checkpoint
    restored = load_checkpoint(path)
    resumed = backend_cls("cartpole", _cfg(), base_seed=1)
    try:
        warmed = resumed.warm_caches(restored.population)
        assert warmed >= 1
        assert _info(resumed, kind)["warmed"] == warmed
        # warming is bookkept separately, not as lookup traffic
        assert _info(resumed, kind)["hits"] == 0
        assert _info(resumed, kind)["misses"] == 0

        restored.advance(resumed.evaluate)
        first = _info(resumed, kind)
        # the first post-resume generation is exactly the warm set:
        # nothing may rebuild
        assert first["misses"] == 0, (
            "cold cache after resume: first generation re-decoded"
        )
        _run(resumed, restored, TAIL - 1)
        resumed_tail = _info(resumed, kind)
    finally:
        resumed.close()

    # checkpoints do not carry history, so the restored run's rows start
    # at the split point
    resumed_history = [row.best_fitness for row in restored.history]
    assert resumed_history == continuous_history[SPLIT:], (
        "resume changed the fitness trajectory"
    )

    # hit-rate parity over the tail: the warm cache can only do better
    # than the continuous run's organically-filled one
    lookups = resumed_tail["hits"] + resumed_tail["misses"]
    continuous_rate = tail_hits / (tail_hits + tail_misses)
    resumed_rate = resumed_tail["hits"] / lookups
    assert resumed_rate >= continuous_rate


class TestResumeWarmStart:
    def test_decode_cache_roundtrip(self, tmp_path):
        _roundtrip(tmp_path, FastCPUBackend, "decode")

    def test_compile_cache_roundtrip(self, tmp_path):
        _roundtrip(tmp_path, CompiledCPUBackend, "compile")

    def test_cold_resume_shows_the_bug(self, tmp_path):
        """Without warming, the first resumed generation re-decodes the
        entire population — the regression this suite guards against."""
        path = str(tmp_path / "run.json")
        backend = FastCPUBackend("cartpole", _cfg(), base_seed=1)
        population = Population(_cfg(), seed=7)
        try:
            _run(backend, population, SPLIT)
            save_checkpoint(population, path)
        finally:
            backend.close()

        restored = load_checkpoint(path)
        cold = FastCPUBackend("cartpole", _cfg(), base_seed=1)
        try:
            restored.advance(cold.evaluate)
            info = cold.cache_info()
        finally:
            cold.close()
        distinct = len({g.structural_hash() for g in restored.population})
        assert info["misses"] == distinct, (
            "cold resume should re-decode every distinct structure"
        )
