"""Unit and integration tests for the E3 platform."""

import pytest

from repro.core.platform import E3, default_inax_config
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig


def _small_neat(pop=30):
    return NEATConfig(population_size=pop, max_generations=10)


def test_default_inax_config_follows_paper():
    cfg = default_inax_config(num_outputs=4)
    assert cfg.num_pus == 50
    assert cfg.num_pes_per_pu == 4  # PE = output nodes


def test_unknown_env_rejected():
    with pytest.raises(KeyError):
        E3("walker3d")


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        E3("cartpole", backend="tpu")


def test_neat_config_sized_for_env():
    platform = E3("cartpole", neat_config=_small_neat())
    assert platform.neat_config.num_inputs == 4
    assert platform.neat_config.num_outputs == 2
    assert platform.neat_config.fitness_threshold == 475.0


def test_run_cartpole_cpu_backend():
    platform = E3("cartpole", backend="cpu", neat_config=_small_neat(), seed=2)
    result = platform.run(max_generations=8, fitness_threshold=100.0)
    assert result.generations <= 8
    assert result.best_fitness > 0
    assert result.records  # workload captured
    assert result.history
    net = result.best_network()
    assert net.activate([0, 0, 0, 0]).shape == (2,)


def test_run_cartpole_inax_backend_solves_same_as_cpu():
    cpu = E3("cartpole", backend="cpu", neat_config=_small_neat(), seed=3)
    inax = E3(
        "cartpole",
        backend="inax",
        neat_config=_small_neat(),
        inax_config=INAXConfig(num_pus=10, num_pes_per_pu=2),
        seed=3,
    )
    r_cpu = cpu.run(max_generations=3)
    r_inax = inax.run(max_generations=3)
    # identical seeds + bit-exact accelerator => identical trajectories
    assert [h.best_fitness for h in r_cpu.history] == [
        h.best_fitness for h in r_inax.history
    ]
    assert r_cpu.best_fitness == r_inax.best_fitness


def test_profiler_populated():
    platform = E3("cartpole", neat_config=_small_neat(20), seed=0)
    platform.run(max_generations=2)
    assert platform.profiler.seconds("evaluate") > 0
    assert "speciate" in platform.profiler.phases


def test_custom_backend_instance():
    from repro.core.backends import CPUBackend

    neat_cfg = NEATConfig(
        num_inputs=4, num_outputs=2, population_size=20, max_generations=5
    )
    backend = CPUBackend("cartpole", neat_cfg, base_seed=0)
    platform = E3("cartpole", backend=backend, neat_config=neat_cfg, seed=0)
    result = platform.run(max_generations=1)
    assert result.backend_name == "cpu"
