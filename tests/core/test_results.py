"""Unit tests for result formatting helpers."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.results import (
    format_breakdown,
    format_seconds,
    format_table,
    to_json,
)


class TestFormatSeconds:
    def test_scales(self):
        assert format_seconds(527.0) == "527"
        assert format_seconds(43.3) == "43.3"
        assert format_seconds(0.02) == "0.02"
        assert format_seconds(2.4) == "2.4"

    def test_thousands_separator(self):
        assert format_seconds(9749.0) == "9,749"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["env", "runtime"],
            [["Env1", "0.3"], ["Env6", "527.0"]],
            title="Fig 9(b)",
        )
        lines = table.splitlines()
        assert lines[0] == "Fig 9(b)"
        assert "env" in lines[1] and "runtime" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_cells_stringified(self):
        table = format_table(["n"], [[3], [4.5]])
        assert "3" in table and "4.5" in table


class TestFormatBreakdown:
    def test_percentages(self):
        line = format_breakdown({"evaluate": 0.967, "evolve": 0.033})
        assert "evaluate 96.7%" in line
        assert "evolve 3.3%" in line
        assert " | " in line


class TestToJson:
    def test_plain_objects(self):
        assert json.loads(to_json({"a": [1, 2]})) == {"a": [1, 2]}

    def test_dataclasses(self):
        @dataclass
        class Point:
            x: int
            y: int

        assert json.loads(to_json(Point(1, 2))) == {"x": 1, "y": 2}

    def test_numpy_arrays(self):
        out = json.loads(to_json({"v": np.array([1.0, 2.0])}))
        assert out["v"] == [1.0, 2.0]

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            to_json({"f": lambda: None})
