"""Unit tests for the suite runner."""

import pytest

from repro.core.suite import (
    BENCH_SETTINGS,
    PAPER_SETTINGS,
    SuiteSettings,
    run_suite,
)
from repro.envs.registry import ENV_SUITE


class TestSettings:
    def test_bench_settings_cover_whole_suite(self):
        assert set(BENCH_SETTINGS.generations) == {
            s.name for s in ENV_SUITE
        }

    def test_paper_settings_use_population_200(self):
        assert PAPER_SETTINGS.population_size == 200  # §VI-C

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            SuiteSettings(population_size=1)

    def test_unknown_env_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            SuiteSettings(population_size=10, generations={"doom": 5})


class TestRunSuite:
    def test_selected_envs_only(self):
        settings = SuiteSettings(
            population_size=20,
            generations={"cartpole": 2, "pendulum": 2},
            seed=1,
        )
        results = run_suite(settings, environments=["cartpole"])
        assert set(results) == {"cartpole"}
        result = results["cartpole"]
        assert result.generations <= 2
        assert set(result.platforms) == {"cpu", "gpu", "inax"}

    def test_results_in_suite_order(self):
        settings = SuiteSettings(
            population_size=15,
            generations={"pendulum": 1, "cartpole": 1},
            seed=2,
        )
        results = run_suite(settings)
        assert list(results) == ["cartpole", "pendulum"]  # Env1 before Env6

    def test_envs_without_caps_skipped(self):
        settings = SuiteSettings(
            population_size=15, generations={"cartpole": 1}, seed=0
        )
        results = run_suite(settings)
        assert set(results) == {"cartpole"}
