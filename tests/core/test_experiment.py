"""Unit and integration tests for the three-platform experiment driver."""

import pytest

from repro.core.backends import CPUBackend
from repro.core.experiment import cpu_model_for, price_run, run_experiment
from repro.hw import calibration as cal
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig


def _quick(env="cartpole", seed=1, gens=3, pop=30):
    return run_experiment(
        env,
        seed=seed,
        neat_config=NEATConfig(population_size=pop),
        max_generations=gens,
        fitness_threshold=150.0,
    )


class TestRunExperiment:
    def test_result_structure(self):
        res = _quick()
        assert res.env_name == "cartpole"
        assert res.paper_id == "Env1"
        assert set(res.platforms) == {"cpu", "gpu", "inax"}
        assert res.generations >= 1
        assert res.inax_report.individuals > 0
        assert res.run is not None

    def test_platform_ordering(self):
        # the paper's Fig 9(b) ordering: GPU slowest, INAX fastest
        res = _quick(gens=4)
        cpu = res.platforms["cpu"].runtime_seconds
        gpu = res.platforms["gpu"].runtime_seconds
        inax = res.platforms["inax"].runtime_seconds
        assert gpu > cpu > inax

    def test_speedup_and_energy_helpers(self):
        res = _quick()
        assert res.speedup() > 1.0
        assert res.energy_ratio("inax") < 1.0  # INAX saves energy
        assert res.energy_ratio("gpu") > 1.0  # GPU burns more

    def test_energy_consistent_with_times(self):
        res = _quick()
        cpu = res.platforms["cpu"]
        expected = cpu.times.total * cal.CPU_POWER_WATTS
        assert cpu.energy_joules == pytest.approx(expected)


class TestPriceRun:
    def _records(self):
        neat_cfg = NEATConfig(num_inputs=4, num_outputs=2, population_size=10)
        inax_cfg = INAXConfig(num_pus=5, num_pes_per_pu=2)
        backend = CPUBackend(
            "cartpole", neat_cfg, base_seed=0, inax_config=inax_cfg
        )
        from tests.core.test_backends import _genomes

        backend.evaluate(_genomes(neat_cfg, n=10))
        return backend.records, inax_cfg

    def test_prices_all_platforms(self):
        records, inax_cfg = self._records()
        platforms, merged = price_run(records, inax_cfg)
        assert set(platforms) == {"cpu", "gpu", "inax"}
        assert merged.individuals == 10

    def test_missing_cycle_report_rejected(self):
        records, inax_cfg = self._records()
        records[0].cycle_report = None
        with pytest.raises(ValueError, match="no INAX cycle report"):
            price_run(records, inax_cfg)


class TestCpuModelFor:
    def test_box2d_env_pricier(self):
        cheap = cpu_model_for("cartpole")
        pricey = cpu_model_for("bipedal_walker")
        assert pricey.seconds_per_env_step > cheap.seconds_per_env_step

    def test_unknown_env_uses_default(self):
        model = cpu_model_for("not_an_env")
        assert model.seconds_per_env_step == cal.CPU_SECONDS_PER_ENV_STEP
