"""Regression: worker cache accounting must not leak between runs.

``_fastcpu_worker_evaluate`` used to diff the worker backend's
cumulative cache counters against *module-level* reported dicts that
survived pool re-initialization — so the second run in a process
inherited the first run's cumulative counts and shipped garbage
(negative) deltas to its parent.  The state now lives on the
:class:`~repro.core.backends._WorkerState` object rebuilt by every
``_fastcpu_worker_init`` call.

The tests drive the worker protocol *in-process* (init + evaluate are
plain functions; running them here is exactly what a pool worker does
after fork), which makes the cross-run contamination deterministic to
observe without spawning pools.
"""

from repro.core import backends
from repro.core.backends import (
    _fastcpu_worker_evaluate,
    _fastcpu_worker_init,
)
from repro.core.platform import E3, effective_neat_config
from repro.neat.config import NEATConfig
from repro.neat.population import Population

CONFIG = effective_neat_config("cartpole", NEATConfig(population_size=8))


def worker_init() -> None:
    _fastcpu_worker_init(
        env_name="cartpole",
        neat_config=CONFIG,
        episodes_per_genome=1,
        base_seed=0,
        env_kwargs={},
        cache_size=128,
    )


def evaluate_once(genomes) -> dict:
    _, telemetry = _fastcpu_worker_evaluate((genomes, False, "gen=0|shard=0"))
    return telemetry


def sample_genomes():
    return list(Population(CONFIG, seed=0).population)


class TestWorkerStateScoping:
    def teardown_method(self):
        backends._WORKER_STATE = None

    def test_deltas_reset_with_reinitialized_pool(self):
        genomes = sample_genomes()
        worker_init()
        first = evaluate_once(genomes)["cache_delta"]
        assert first["misses"] > 0

        # a second run's pool re-runs the initializer in the same
        # process; its first report must be a fresh, self-contained
        # delta — not a diff against the previous run's totals
        worker_init()
        second = evaluate_once(genomes)["cache_delta"]
        assert second == first
        assert second["hits"] >= 0
        assert second["misses"] >= 0

    def test_within_run_deltas_still_accumulate(self):
        genomes = sample_genomes()
        worker_init()
        first = evaluate_once(genomes)
        again = evaluate_once(genomes)
        # same genomes, same worker: second call is pure cache hits,
        # and its delta reflects only the activity since the first
        assert first["cache_delta"]["misses"] > 0
        assert again["cache_delta"]["misses"] == 0
        assert again["cache_delta"]["hits"] == len(genomes)

    def test_worker_state_object_is_rebuilt(self):
        worker_init()
        state_a = backends._WORKER_STATE
        worker_init()
        state_b = backends._WORKER_STATE
        assert state_a is not state_b
        assert state_b.reported_cache == {"hits": 0, "misses": 0}
        assert state_b.reported_compile == {"hits": 0, "misses": 0}


class TestBackToBackRuns:
    def test_two_e3_runs_have_independent_cache_stats(self):
        """End-to-end satellite check: two E3 instances back-to-back in
        one process report run-local (non-negative, sane) cache stats."""

        def run_once():
            e3 = E3(
                "cartpole",
                backend="cpu-fast",
                neat_config=NEATConfig(population_size=8),
                seed=3,
            )
            result = e3.run(max_generations=2)
            info = e3.backend.cache_info()
            history = [s.best_fitness for s in result.history]
            return info, history

        first_info, first_history = run_once()
        second_info, second_history = run_once()
        assert second_history == first_history
        # both runs saw identical genome streams, so their run-local
        # cache activity is identical — the leak made run 2 diverge
        assert second_info["hits"] == first_info["hits"]
        assert second_info["misses"] == first_info["misses"]
        assert second_info["hits"] >= 0
        assert second_info["misses"] > 0

    def test_sharded_e3_runs_back_to_back(self):
        """Same contract through real worker pools (workers=2): the
        second run's merged shard deltas must match the first's."""

        def run_once():
            e3 = E3(
                "cartpole",
                backend="cpu-fast",
                neat_config=NEATConfig(population_size=8),
                seed=3,
                workers=2,
            )
            result = e3.run(max_generations=2)
            info = e3.backend.cache_info()
            e3.backend.close()
            history = [s.best_fitness for s in result.history]
            return info, history

        first_info, first_history = run_once()
        second_info, second_history = run_once()
        assert second_history == first_history
        assert second_info["hits"] == first_info["hits"]
        assert second_info["misses"] == first_info["misses"]
