"""S4: dispatch order can never change a fitness bit.

Episode seeds are keyed on (run seed, genome key, episode) and fitness
is per-genome, so *any* permutation of the population — and any wave
packing the LPT scheduler chooses — must produce bit-identical
per-genome fitness on every backend."""

import numpy as np
import pytest

from repro.core.backends import (
    CompiledCPUBackend,
    CPUBackend,
    FastCPUBackend,
    INAXBackend,
)
from repro.inax.accelerator import INAXConfig
from repro.inax.pipeline import PipelineConfig
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import FaultPlan

from tests.conftest import evolved_genome

ENVS = ["cartpole", "lunar_lander"]
BACKENDS = ["cpu", "cpu-fast", "cpu-compiled", "inax"]


def _cfg(env_name):
    if env_name == "lunar_lander":
        return NEATConfig(num_inputs=8, num_outputs=4, population_size=6)
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(0)
    return [
        evolved_genome(cfg, tracker, rng, mutations=6, key=i)
        for i in range(cfg.population_size)
    ]


def _backend(name, env_name, cfg, pipeline=None):
    kwargs = dict(base_seed=1)
    if name == "cpu":
        return CPUBackend(env_name, cfg, pipeline=pipeline, **kwargs)
    if name == "cpu-fast":
        return FastCPUBackend(env_name, cfg, pipeline=pipeline, **kwargs)
    if name == "cpu-compiled":
        return CompiledCPUBackend(env_name, cfg, pipeline=pipeline, **kwargs)
    return INAXBackend(
        env_name,
        cfg,
        inax_config=INAXConfig(num_pus=3, num_pes_per_pu=cfg.num_outputs),
        pipeline=pipeline,
        **kwargs,
    )


def _fitness_by_key(backend, genomes):
    try:
        backend.evaluate(genomes)
        backend.drain()
    finally:
        backend.close()
    return {g.key: g.fitness for g in genomes}


@pytest.mark.parametrize("env_name", ENVS)
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_permutations_and_lpt_are_bit_identical(env_name, backend_name):
    cfg = _cfg(env_name)
    baseline = _fitness_by_key(
        _backend(backend_name, env_name, cfg), _genomes(cfg)
    )
    assert all(f is not None for f in baseline.values())

    rng = np.random.default_rng(42)
    for trial in range(3):
        genomes = _genomes(cfg)
        order = rng.permutation(len(genomes))
        shuffled = [genomes[i] for i in order]
        pipeline = PipelineConfig(
            schedule="lpt", prefetch=True, overlap=bool(trial % 2)
        )
        backend = _backend(backend_name, env_name, cfg, pipeline=pipeline)
        # seed the length history so the second generation packs by LPT
        permuted = _fitness_by_key(backend, shuffled)
        assert permuted == baseline, (trial, "first generation")

        genomes = _genomes(cfg)
        backend2 = _backend(backend_name, env_name, cfg, pipeline=pipeline)
        try:
            backend2.evaluate(genomes)
            backend2.drain()
            second = _genomes(cfg)
            backend2.evaluate(second)  # now packs on real predictions
            backend2.drain()
        finally:
            backend2.close()
        assert {g.key: g.fitness for g in second} == baseline, (
            trial,
            "second generation (lpt-packed)",
        )


class TestQuarantinedCostPrediction:
    """A quarantined episode's length must not feed next-gen LPT costs.

    ``env.reward_nan`` ends an episode wherever the fault fired, so the
    recorded length says nothing about the genome's real cost.  Before
    the fix, that poisoned length flowed into ``predict_costs`` and the
    wave packer priced the genome off a fault artifact; quarantine now
    drops the key from the length history so the next generation packs
    it in arrival order (prediction ``None``), exactly like a genome
    never seen before.
    """

    def _faulty_backend(self):
        cfg = _cfg("cartpole")
        return cfg, INAXBackend(
            "cartpole",
            cfg,
            inax_config=INAXConfig(
                num_pus=3, num_pes_per_pu=cfg.num_outputs
            ),
            base_seed=1,
            fault_plan=FaultPlan.parse("seed=11,env.reward_nan@0.4"),
            pipeline=PipelineConfig(schedule="lpt"),
        )

    def test_quarantined_keys_predict_none_next_generation(self):
        cfg, backend = self._faulty_backend()
        try:
            first = _genomes(cfg)
            backend.evaluate(first)
            backend.drain()
            quarantined = backend.quarantine_count
            assert 0 < quarantined < len(first), (
                "fault seed must quarantine some but not all genomes "
                "for this test to discriminate"
            )
            # the poisoned lengths were dropped at quarantine time
            surviving = set(backend._last_lengths)
            assert len(surviving) == len(first) - quarantined

            backend.evaluate(_genomes(cfg))
            backend.drain()
            predicted = backend.records[1].predicted_costs
            assert predicted is not None
        finally:
            backend.close()

        # same keys next generation: survivors price off history, the
        # quarantined fall back to arrival-order placement
        assert sum(cost is None for cost in predicted) == quarantined
        known = [cost for cost in predicted if cost is not None]
        assert len(known) == len(surviving)
        assert all(cost > 0.0 for cost in known)

    def test_clean_run_predicts_every_key(self):
        cfg = _cfg("cartpole")
        backend = INAXBackend(
            "cartpole",
            cfg,
            inax_config=INAXConfig(
                num_pus=3, num_pes_per_pu=cfg.num_outputs
            ),
            base_seed=1,
            pipeline=PipelineConfig(schedule="lpt"),
        )
        try:
            backend.evaluate(_genomes(cfg))
            backend.drain()
            backend.evaluate(_genomes(cfg))
            backend.drain()
            predicted = backend.records[1].predicted_costs
        finally:
            backend.close()
        assert predicted is not None
        assert all(cost is not None for cost in predicted)
