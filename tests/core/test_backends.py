"""Unit and integration tests for the evaluation backends.

The headline property: a NEAT run's fitness values are identical on the
CPU backend and the functional INAX backend, because the decoded
networks and the accelerator agree bit-for-bit and episodes are seeded
per genome.
"""

import numpy as np
import pytest

from repro.core.backends import CPUBackend, FastCPUBackend, INAXBackend
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population

from tests.conftest import evolved_genome


def _genomes(cfg, n=6, mutations=6, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(n)
    ]


@pytest.fixture
def cartpole_cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


class TestCPUBackend:
    def test_sets_fitness_on_all(self, cartpole_cfg):
        backend = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        assert all(g.fitness is not None for g in genomes)

    def test_records_workload(self, cartpole_cfg):
        backend = CPUBackend(
            "cartpole",
            cartpole_cfg,
            base_seed=1,
            inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
        )
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        assert len(backend.records) == 1
        record = backend.records[0]
        assert record.workload.population_size == 6
        assert record.workload.total_env_steps == sum(record.episode_lengths)
        assert record.cycle_report is not None
        assert record.cycle_report.individuals == 6

    def test_no_inax_config_no_report(self, cartpole_cfg):
        backend = CPUBackend("cartpole", cartpole_cfg, inax_config=None)
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        assert backend.records[0].cycle_report is None

    def test_deterministic_across_calls(self, cartpole_cfg):
        a = CPUBackend("cartpole", cartpole_cfg, base_seed=7)
        b = CPUBackend("cartpole", cartpole_cfg, base_seed=7)
        ga, gb = _genomes(cartpole_cfg), _genomes(cartpole_cfg)
        a.evaluate(ga)
        b.evaluate(gb)
        assert [g.fitness for g in ga] == [g.fitness for g in gb]

    def test_multiple_episodes_averaged(self, cartpole_cfg):
        backend = CPUBackend(
            "cartpole", cartpole_cfg, episodes_per_genome=3, base_seed=2
        )
        genomes = _genomes(cartpole_cfg, n=2)
        backend.evaluate(genomes)
        record = backend.records[0]
        # episode lengths accumulate across the 3 episodes
        assert all(
            steps >= 3 for steps in record.episode_lengths
        )


class TestINAXBackend:
    def test_fitness_identical_to_cpu(self, cartpole_cfg):
        """The backend-equivalence integration property."""
        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=5)
        inax = INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(num_pus=4, num_pes_per_pu=2),
            base_seed=5,
        )
        genomes_cpu = _genomes(cartpole_cfg, seed=3)
        genomes_inax = _genomes(cartpole_cfg, seed=3)
        cpu.evaluate(genomes_cpu)
        inax.evaluate(genomes_inax)
        for a, b in zip(genomes_cpu, genomes_inax):
            assert a.fitness == b.fitness

    def test_episode_lengths_identical_to_cpu(self, cartpole_cfg):
        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=5)
        inax = INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(num_pus=2, num_pes_per_pu=1),
            base_seed=5,
        )
        gc, gi = _genomes(cartpole_cfg, seed=4), _genomes(cartpole_cfg, seed=4)
        cpu.evaluate(gc)
        inax.evaluate(gi)
        assert cpu.records[0].episode_lengths == inax.records[0].episode_lengths

    def test_device_report_attached(self, cartpole_cfg):
        inax = INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
            base_seed=1,
        )
        genomes = _genomes(cartpole_cfg)
        inax.evaluate(genomes)
        report = inax.records[0].cycle_report
        assert report is not None
        assert report.individuals == 6
        assert report.steps == max(inax.records[0].episode_lengths[:3]) + max(
            inax.records[0].episode_lengths[3:]
        )  # two waves of 3, lock-step until the slowest finishes

    def test_wave_count_respects_pu_limit(self, cartpole_cfg):
        inax = INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(num_pus=2, num_pes_per_pu=1),
            base_seed=1,
        )
        genomes = _genomes(cartpole_cfg, n=5)
        inax.evaluate(genomes)  # 3 waves: 2 + 2 + 1; must not raise
        assert all(g.fitness is not None for g in genomes)


class TestFastCPUBackend:
    def test_single_generation_bitwise_identical_to_cpu(self, cartpole_cfg):
        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=5,
                         episodes_per_genome=3)
        fast = FastCPUBackend("cartpole", cartpole_cfg, base_seed=5,
                              episodes_per_genome=3)
        gc = _genomes(cartpole_cfg, seed=3)
        gf = _genomes(cartpole_cfg, seed=3)
        cpu.evaluate(gc)
        fast.evaluate(gf)
        assert [g.fitness for g in gc] == [g.fitness for g in gf]
        assert cpu.records[0].episode_lengths == fast.records[0].episode_lengths

    def test_five_generation_trajectory_identical_to_cpu(self, cartpole_cfg):
        """The tentpole acceptance property: a seeded 5-generation
        CartPole run produces the exact same fitness trajectory on both
        software backends (same floats, same champions, same history)."""
        def run(backend):
            population = Population(cartpole_cfg, seed=9)
            result = population.run(backend.evaluate, max_generations=5)
            return result

        cpu_result = run(CPUBackend("cartpole", cartpole_cfg, base_seed=9))
        fast = FastCPUBackend("cartpole", cartpole_cfg, base_seed=9)
        fast_result = run(fast)
        fast.close()
        assert [s.best_fitness for s in cpu_result.history] == [
            s.best_fitness for s in fast_result.history
        ]
        assert [s.mean_fitness for s in cpu_result.history] == [
            s.mean_fitness for s in fast_result.history
        ]
        assert (
            cpu_result.best_genome.structural_hash()
            == fast_result.best_genome.structural_hash()
        )

    def test_sharded_matches_serial(self, cartpole_cfg):
        serial = FastCPUBackend("cartpole", cartpole_cfg, base_seed=2,
                                episodes_per_genome=2)
        sharded = FastCPUBackend("cartpole", cartpole_cfg, base_seed=2,
                                 episodes_per_genome=2, workers=2)
        gs = _genomes(cartpole_cfg, seed=1)
        gp = _genomes(cartpole_cfg, seed=1)
        serial.evaluate(gs)
        sharded.evaluate(gp)
        sharded.close()
        serial.close()
        assert [g.fitness for g in gs] == [g.fitness for g in gp]
        assert (
            serial.records[0].episode_lengths
            == sharded.records[0].episode_lengths
        )

    def test_decode_cache_hits_across_generations(self, cartpole_cfg):
        backend = FastCPUBackend("cartpole", cartpole_cfg, base_seed=1)
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        info = backend.cache_info()
        assert info["hits"] == 0 and info["misses"] == len(genomes)
        backend.evaluate(genomes)  # e.g. elites carried over unchanged
        info = backend.cache_info()
        assert info["hits"] == len(genomes)
        assert info["misses"] == len(genomes)

    def test_cache_capacity_bounded(self, cartpole_cfg):
        backend = FastCPUBackend(
            "cartpole", cartpole_cfg, base_seed=1, cache_size=2
        )
        backend.evaluate(_genomes(cartpole_cfg, n=5))
        assert backend.cache_info()["size"] == 2

    def test_unvectorizable_genome_falls_back(self, cartpole_cfg):
        genomes_fast = _genomes(cartpole_cfg, n=4)
        genomes_cpu = _genomes(cartpole_cfg, n=4)
        for gs in (genomes_fast, genomes_cpu):
            node = gs[1].nodes[0]
            node.aggregation = "mean"  # vectorizer only supports sum
        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=3)
        fast = FastCPUBackend("cartpole", cartpole_cfg, base_seed=3)
        cpu.evaluate(genomes_cpu)
        fast.evaluate(genomes_fast)
        assert [g.fitness for g in genomes_cpu] == [
            g.fitness for g in genomes_fast
        ]

    def test_negative_workers_rejected(self, cartpole_cfg):
        with pytest.raises(ValueError, match="workers"):
            FastCPUBackend("cartpole", cartpole_cfg, workers=-1)

    def test_close_is_idempotent(self, cartpole_cfg):
        backend = FastCPUBackend("cartpole", cartpole_cfg)
        backend.close()
        backend.close()

    def test_e3_accepts_cpu_fast(self):
        from repro.core.platform import E3

        platform = E3(
            "cartpole",
            backend="cpu-fast",
            neat_config=NEATConfig(population_size=15),
            seed=2,
        )
        result = platform.run(max_generations=1)
        platform.backend.close()
        assert result.backend_name == "cpu-fast"


class TestSeeding:
    def test_seed_depends_on_genome_key(self, cartpole_cfg):
        backend = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        a = backend._episode_seed(Genome(key=1), 0)
        b = backend._episode_seed(Genome(key=2), 0)
        assert a != b

    def test_seed_depends_on_episode(self, cartpole_cfg):
        backend = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        g = Genome(key=1)
        assert backend._episode_seed(g, 0) != backend._episode_seed(g, 1)

    def test_no_collisions_across_key_episode_grid(self, cartpole_cfg):
        """Regression: the old ``key * 31 + episode`` mix collided as
        soon as (key, episode) pairs aliased — e.g. genome 1 episode 31
        vs genome 2 episode 0 — silently evaluating different genomes
        on identical episode streams."""
        backend = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        seeds = {
            backend._episode_seed(Genome(key=k), e)
            for k in range(200)
            for e in range(50)
        }
        assert len(seeds) == 200 * 50

    def test_deterministic_and_backend_independent(self, cartpole_cfg):
        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=6)
        fast = FastCPUBackend("cartpole", cartpole_cfg, base_seed=6)
        inax = INAXBackend("cartpole", cartpole_cfg, base_seed=6)
        g = Genome(key=17)
        assert (
            cpu._episode_seed(g, 4)
            == fast._episode_seed(g, 4)
            == inax._episode_seed(g, 4)
        )

    def test_seed_depends_on_base_seed(self, cartpole_cfg):
        a = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        b = CPUBackend("cartpole", cartpole_cfg, base_seed=2)
        g = Genome(key=1)
        assert a._episode_seed(g, 0) != b._episode_seed(g, 0)

    def test_seed_fits_numpy_seeding(self, cartpole_cfg):
        backend = CPUBackend("cartpole", cartpole_cfg, base_seed=1)
        seed = backend._episode_seed(Genome(key=3), 2)
        assert 0 <= seed < 2**63
        np.random.default_rng(seed)  # must be accepted


class TestOversizePolicy:
    def _tiny_buffer_backend(self, cartpole_cfg, policy):
        return INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(
                num_pus=3, num_pes_per_pu=1, weight_buffer_capacity=4
            ),
            base_seed=1,
            oversize_policy=policy,
        )

    def test_invalid_policy_rejected(self, cartpole_cfg):
        with pytest.raises(ValueError, match="oversize_policy"):
            self._tiny_buffer_backend(cartpole_cfg, "shrink")

    def test_raise_policy(self, cartpole_cfg):
        backend = self._tiny_buffer_backend(cartpole_cfg, "raise")
        genomes = _genomes(cartpole_cfg)
        from repro.inax.pu import BufferOverflowError

        with pytest.raises(BufferOverflowError):
            backend.evaluate(genomes)

    def test_penalize_policy_prunes_oversized(self, cartpole_cfg):
        backend = self._tiny_buffer_backend(cartpole_cfg, "penalize")
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        # everything got a fitness; the oversized ones the penalty
        assert all(g.fitness is not None for g in genomes)
        assert backend.oversize_count > 0
        assert any(g.fitness == backend.oversize_penalty for g in genomes)

    def test_fitting_genomes_still_evaluated(self, cartpole_cfg):
        backend = INAXBackend(
            "cartpole",
            cartpole_cfg,
            inax_config=INAXConfig(
                num_pus=3, num_pes_per_pu=1, weight_buffer_capacity=100
            ),
            base_seed=1,
            oversize_policy="penalize",
        )
        genomes = _genomes(cartpole_cfg)
        backend.evaluate(genomes)
        assert backend.oversize_count == 0
        assert all(g.fitness > backend.oversize_penalty for g in genomes)


class TestGPUBackend:
    def test_functionally_identical_to_cpu(self, cartpole_cfg):
        from repro.core.backends import GPUBackend

        cpu = CPUBackend("cartpole", cartpole_cfg, base_seed=5)
        gpu = GPUBackend("cartpole", cartpole_cfg, base_seed=5)
        gc, gg = _genomes(cartpole_cfg, seed=6), _genomes(cartpole_cfg, seed=6)
        cpu.evaluate(gc)
        gpu.evaluate(gg)
        assert [g.fitness for g in gc] == [g.fitness for g in gg]
        assert gpu.name == "gpu"

    def test_e3_accepts_gpu_backend(self):
        from repro.core.platform import E3

        platform = E3(
            "cartpole",
            backend="gpu",
            neat_config=NEATConfig(population_size=15),
            seed=2,
        )
        result = platform.run(max_generations=1)
        assert result.backend_name == "gpu"
