"""Tests for the model-tuning machinery: env physics overrides and
warm-started populations (§I's first use-case)."""

import numpy as np
import pytest

from repro.core.platform import E3
from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.envs.registry import make
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.population import Population

from tests.conftest import evolved_genome


class TestEnvPhysicsOverrides:
    def test_pendulum_mass_changes_dynamics(self):
        nominal = Pendulum(seed=0)
        heavy = Pendulum(seed=0, mass=3.0)
        nominal.reset(seed=1)
        heavy.reset(seed=1)
        action = np.array([2.0])
        obs_n = nominal.step(action)[0]
        obs_h = heavy.step(action)[0]
        assert not np.array_equal(obs_n, obs_h)

    def test_pendulum_invalid_params(self):
        with pytest.raises(ValueError):
            Pendulum(mass=0)
        with pytest.raises(ValueError):
            Pendulum(length=-1)

    def test_cartpole_overrides(self):
        env = CartPole(pole_mass=0.3, pole_half_length=0.8, force_mag=5.0)
        assert env.POLE_MASS == 0.3
        assert env.FORCE_MAG == 5.0
        # class defaults untouched
        assert CartPole.POLE_MASS == 0.1

    def test_cartpole_invalid_params(self):
        for kwargs in (
            {"pole_mass": 0},
            {"pole_half_length": -1},
            {"force_mag": 0},
        ):
            with pytest.raises(ValueError):
                CartPole(**kwargs)

    def test_make_forwards_kwargs(self):
        env = make("pendulum", seed=0, mass=2.0)
        assert env.MASS == 2.0

    def test_make_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError):
            make("pendulum", wingspan=3.0)


class TestWarmStart:
    def _champion(self, cfg):
        tracker = InnovationTracker(cfg.num_outputs)
        rng = np.random.default_rng(7)
        genome = evolved_genome(cfg, tracker, rng, mutations=12, key=0)
        genome.fitness = 10.0
        return genome

    def test_population_contains_exact_champion_copy(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=20)
        champion = self._champion(cfg)
        pop = Population(cfg, seed=1, seed_genome=champion)
        assert len(pop.population) == 20
        first = pop.population[0]
        assert set(first.connections) == set(champion.connections)
        assert all(
            first.connections[k].weight == champion.connections[k].weight
            for k in champion.connections
        )
        assert first.fitness is None  # must be re-evaluated on the new env

    def test_warm_start_population_is_mutated_diversity(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=20)
        champion = self._champion(cfg)
        pop = Population(cfg, seed=1, seed_genome=champion)
        signatures = {
            tuple(sorted(g.connections)) for g in pop.population
        }
        assert len(signatures) > 1  # mutation actually diversified

    def test_innovation_tracker_primed(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=10)
        champion = self._champion(cfg)
        max_innovation = max(
            c.innovation for c in champion.connections.values()
        )
        pop = Population(cfg, seed=1, seed_genome=champion)
        # new innovations continue past the champion's history
        assert pop.tracker.innovation_count > max_innovation
        # re-querying a champion connection returns its historic number
        key = next(iter(champion.connections))
        assert (
            pop.tracker.connection_innovation(key)
            == champion.connections[key].innovation
        )

    def test_warm_started_run_evolves(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=15)
        champion = self._champion(cfg)
        pop = Population(cfg, seed=2, seed_genome=champion)

        def evaluate(genomes):
            for g in genomes:
                g.fitness = float(len(g.connections))

        result = pop.run(evaluate, max_generations=3)
        assert result.generations == 3

    def test_e3_accepts_seed_genome_and_env_kwargs(self):
        base = E3(
            "pendulum",
            neat_config=NEATConfig(population_size=15),
            seed=3,
        )
        run = base.run(max_generations=1)
        tuned = E3(
            "pendulum",
            neat_config=NEATConfig(population_size=15),
            seed=4,
            env_kwargs={"mass": 1.5},
            seed_genome=run.best_genome,
        )
        assert tuned.backend.env_kwargs == {"mass": 1.5}
        result = tuned.run(max_generations=1)
        assert result.best_fitness is not None

    def test_env_kwargs_change_fitness_landscape(self):
        cfg = NEATConfig(population_size=12)
        a = E3("pendulum", neat_config=cfg, seed=5)
        b = E3("pendulum", neat_config=cfg, seed=5, env_kwargs={"mass": 3.0})
        fa = a.run(max_generations=1).best_fitness
        fb = b.run(max_generations=1).best_fitness
        assert fa != fb
