"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--env", "cartpole"])
        assert args.backend == "inax"
        assert args.population == 100

    def test_sweep_axis_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--axis", "dsp"])


class TestEnvsCommand:
    def test_lists_suite(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        for name in ("cartpole", "pendulum", "bipedal_walker"):
            assert name in out
        assert "Env1" in out


class TestResourcesCommand:
    def test_fitting_config(self, capsys):
        assert main(["resources", "--pus", "50", "--pes", "4"]) == 0
        out = capsys.readouterr().out
        assert "fits" in out and "DSP" in out

    def test_oversized_config_exit_code(self, capsys):
        code = main(["resources", "--pus", "2000", "--pes", "8"])
        assert code == 3
        assert "DOES NOT FIT" in capsys.readouterr().out

    def test_invalid_config_exit_code(self, capsys):
        assert main(["resources", "--pus", "0", "--pes", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_pe_sweep_output(self, capsys):
        code = main(
            [
                "sweep", "--axis", "pe", "--individuals", "20",
                "--outputs", "3", "--steps", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "U(PE)" in out
        assert "heuristic ladder [3, 2, 1]" in out

    def test_pu_sweep_output(self, capsys):
        code = main(
            [
                "sweep", "--axis", "pu", "--individuals", "12",
                "--steps", "3", "--max", "12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "U(PU)" in out


class TestRunCommand:
    def test_run_writes_artifacts(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        csv = tmp_path / "log.csv"
        code = main(
            [
                "run", "--env", "cartpole", "--population", "40",
                "--generations", "5", "--seed", "2", "--quiet",
                "--checkpoint", str(checkpoint), "--csv", str(csv),
            ]
        )
        out = capsys.readouterr().out
        assert "cartpole" in out
        assert checkpoint.exists()
        assert csv.read_text().startswith("generation,")
        assert code in (0, 2)  # solved or honest non-solve

    def test_run_checkpoint_resumable(self, tmp_path):
        from repro.neat.checkpoint import load_checkpoint

        checkpoint = tmp_path / "ckpt.json"
        main(
            [
                "run", "--env", "cartpole", "--population", "30",
                "--generations", "2", "--seed", "1", "--quiet",
                "--checkpoint", str(checkpoint),
            ]
        )
        population = load_checkpoint(checkpoint)
        assert len(population.population) == 30


class TestCompareCommand:
    def test_compare_prints_platforms(self, capsys):
        code = main(
            [
                "compare", "--env", "cartpole", "--population", "30",
                "--generations", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for token in ("E3-CPU", "E3-GPU", "E3-INAX", "speedup"):
            assert token in out


class TestResumeCommand:
    def test_resume_continues_run(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        main(
            [
                "run", "--env", "cartpole", "--population", "30",
                "--generations", "2", "--seed", "1", "--quiet",
                "--checkpoint", str(checkpoint),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "resume", "--checkpoint", str(checkpoint),
                "--env", "cartpole", "--generations", "2", "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert "resumed cartpole" in out
        assert "checkpoint updated" in out
        assert code in (0, 2)

    def test_resume_env_mismatch_rejected(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        main(
            [
                "run", "--env", "cartpole", "--population", "20",
                "--generations", "1", "--seed", "1", "--quiet",
                "--checkpoint", str(checkpoint),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "resume", "--checkpoint", str(checkpoint),
                "--env", "bipedal_walker", "--generations", "1", "--quiet",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        from repro.telemetry.export import validate_trace_jsonl

        trace = tmp_path / "out.jsonl"
        metrics = tmp_path / "m.json"
        code = main(
            [
                "run", "--env", "cartpole", "--population", "24",
                "--generations", "2", "--seed", "1", "--quiet",
                "--trace", str(trace), "--metrics", str(metrics),
            ]
        )
        assert code in (0, 2)
        out = capsys.readouterr().out
        assert validate_trace_jsonl(trace) == []
        chrome = trace.with_suffix(".chrome.json")
        assert chrome.exists()
        payload = json.loads(chrome.read_text())
        assert any(e.get("ph") == "X" for e in payload["traceEvents"])
        snapshot = json.loads(metrics.read_text())
        assert snapshot["manifest"]["command"] == "run"
        assert "phase.evaluate_seconds" in snapshot["metrics"]
        assert "trace written to" in out
        assert "metrics written to" in out

    def test_run_without_flags_writes_nothing(self, tmp_path, capsys):
        code = main(
            [
                "run", "--env", "cartpole", "--population", "20",
                "--generations", "1", "--seed", "1", "--quiet",
            ]
        )
        assert code in (0, 2)
        assert "trace written" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_run_prints_cache_summary(self, tmp_path, capsys):
        code = main(
            [
                "run", "--env", "cartpole", "--backend", "cpu-fast",
                "--population", "24", "--generations", "2", "--seed", "1",
                "--quiet", "--metrics", str(tmp_path / "m.json"),
            ]
        )
        assert code in (0, 2)
        assert "decode cache:" in capsys.readouterr().out

    def test_resume_appends_csv_and_traces(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        csv = tmp_path / "log.csv"
        main(
            [
                "run", "--env", "cartpole", "--population", "24",
                "--generations", "2", "--seed", "1", "--quiet",
                "--checkpoint", str(checkpoint), "--csv", str(csv),
            ]
        )
        rows_before = csv.read_text().strip().splitlines()
        capsys.readouterr()
        trace = tmp_path / "resume.jsonl"
        code = main(
            [
                "resume", "--checkpoint", str(checkpoint),
                "--env", "cartpole", "--generations", "2", "--quiet",
                "--csv", str(csv), "--trace", str(trace),
            ]
        )
        assert code in (0, 2)
        rows_after = csv.read_text().strip().splitlines()
        # resume extended the CSV in place: same single header, more rows
        assert rows_after[: len(rows_before)] == rows_before
        assert len(rows_after) > len(rows_before)
        assert sum(r.startswith("generation,") for r in rows_after) == 1
        assert trace.exists()


class TestTraceSummaryCommand:
    def test_summarizes_run_trace(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        main(
            [
                "run", "--env", "cartpole", "--population", "24",
                "--generations", "2", "--seed", "1", "--quiet",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        assert main(["trace-summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "host phases" in out
        assert "evaluate" in out
        assert "INAX PU timeline" in out

    def test_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "wat"}\n')
        assert main(["trace-summary", str(bad)]) == 2
        assert "unknown row type" in capsys.readouterr().err

    def test_missing_file_errors(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestDotCommand:
    def test_dot_to_stdout(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        main(
            [
                "run", "--env", "cartpole", "--population", "20",
                "--generations", "2", "--seed", "3", "--quiet",
                "--checkpoint", str(checkpoint),
            ]
        )
        capsys.readouterr()
        assert main(["dot", "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph champion {")
        assert "->" in out

    def test_dot_to_file(self, tmp_path, capsys):
        checkpoint = tmp_path / "ckpt.json"
        main(
            [
                "run", "--env", "cartpole", "--population", "20",
                "--generations", "1", "--seed", "3", "--quiet",
                "--checkpoint", str(checkpoint),
            ]
        )
        out_file = tmp_path / "champ.dot"
        assert main(
            ["dot", "--checkpoint", str(checkpoint), "--out", str(out_file)]
        ) == 0
        assert out_file.read_text().startswith("digraph champion {")


class TestHealthFlag:
    def test_run_writes_health_json(self, tmp_path, capsys):
        import json

        from repro.obs.events import validate_health_report

        health = tmp_path / "health.json"
        code = main(
            [
                "run", "--env", "cartpole", "--population", "24",
                "--generations", "2", "--seed", "1", "--quiet",
                "--health", str(health),
            ]
        )
        assert code in (0, 2)
        assert "health:" in capsys.readouterr().out
        payload = json.loads(health.read_text())
        assert validate_health_report(payload) == []
        assert payload["generations"] >= 1  # may solve before the cap
        assert payload["run"]["command"] == "run"
        assert payload["run"]["seed"] == 1

    def test_health_json_replay_identical(self, tmp_path, capsys):
        def run_once(name):
            path = tmp_path / name
            main(
                [
                    "run", "--env", "cartpole", "--population", "20",
                    "--generations", "2", "--seed", "4", "--quiet",
                    "--health", str(path),
                ]
            )
            return path.read_bytes()

        assert run_once("a.json") == run_once("b.json")


class TestDoctorCommand:
    def _trace(self, tmp_path, with_health=True):
        trace = tmp_path / "trace.jsonl"
        argv = [
            "run", "--env", "cartpole", "--population", "24",
            "--generations", "2", "--seed", "1", "--quiet",
            "--trace", str(trace),
        ]
        if with_health:
            argv += ["--health", str(tmp_path / "live.json")]
        main(argv)
        return trace

    def test_doctor_healthy_run(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        capsys.readouterr()
        code = main(["doctor", str(trace)])
        out = capsys.readouterr().out
        assert code in (0, 3, 4)
        assert "verdict:" in out
        assert "hot spots: host phases" in out

    def test_doctor_health_out_matches_live(self, tmp_path, capsys):
        trace = self._trace(tmp_path)
        replayed = tmp_path / "replayed.json"
        main(["doctor", str(trace), "--health-out", str(replayed)])
        assert replayed.read_bytes() == (tmp_path / "live.json").read_bytes()

    def test_doctor_json_output(self, tmp_path, capsys):
        import json

        trace = self._trace(tmp_path)
        capsys.readouterr()
        main(["doctor", str(trace), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["schema"] == "repro.health/v1"
        assert "hotspots" in payload

    def test_doctor_invalid_input(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["doctor", str(empty)]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["doctor", str(tmp_path / "missing.jsonl")]) == 2


class TestBenchDiffCommand:
    def _seed_store(self, tmp_path, value):
        import json

        from repro.obs.trajectory import load_trajectory, record, \
            save_trajectory

        bench_dir = tmp_path / "output"
        bench_dir.mkdir()
        (bench_dir / "BENCH_pipeline.json").write_text(
            json.dumps({"workload": "skewed", "reduction_vs_arrival": 0.6})
        )
        store = tmp_path / "BENCH_trajectory.json"
        trajectory = load_trajectory(store)
        record(
            trajectory, "pipeline",
            {"reduction_vs_arrival": value}, "baseline-commit",
        )
        save_trajectory(store, trajectory)
        return store, bench_dir

    def test_regression_exits_three(self, tmp_path, capsys):
        store, bench_dir = self._seed_store(tmp_path, 0.75)
        code = main(
            [
                "bench-diff", "--trajectory", str(store),
                "--bench-dir", str(bench_dir), "--threshold", "0.1",
            ]
        )
        assert code == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_within_threshold_passes(self, tmp_path, capsys):
        store, bench_dir = self._seed_store(tmp_path, 0.62)
        code = main(
            [
                "bench-diff", "--trajectory", str(store),
                "--bench-dir", str(bench_dir), "--threshold", "0.1",
            ]
        )
        assert code == 0

    def test_record_appends_current_commit(self, tmp_path, capsys):
        import json

        store, bench_dir = self._seed_store(tmp_path, 0.62)
        code = main(
            [
                "bench-diff", "--trajectory", str(store),
                "--bench-dir", str(bench_dir), "--record",
            ]
        )
        assert code == 0
        entries = json.loads(store.read_text())["entries"]
        assert len(entries) == 2  # baseline + the freshly recorded run

    def test_no_bench_files_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(
            [
                "bench-diff", "--trajectory",
                str(tmp_path / "BENCH_trajectory.json"),
                "--bench-dir", str(empty),
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        import json

        store, bench_dir = self._seed_store(tmp_path, 0.62)
        main(
            [
                "bench-diff", "--trajectory", str(store),
                "--bench-dir", str(bench_dir), "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["metric"] == "reduction_vs_arrival"


class TestTraceSummaryJson:
    def test_json_flag_emits_machine_form(self, tmp_path, capsys):
        import json

        trace = tmp_path / "out.jsonl"
        main(
            [
                "run", "--env", "cartpole", "--population", "24",
                "--generations", "2", "--seed", "1", "--quiet",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        assert main(["trace-summary", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["command"] == "run"
        assert "evaluate" in payload["phase_fractions"]
        assert payload["span_count"] > 0
