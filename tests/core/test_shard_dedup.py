"""S3: shard telemetry deltas merge exactly once, even across retries.

A crashed-then-respawned worker re-runs its shard; each attempt's
payload carries a unique ``gen|shard|attempt`` site, and the merge is
idempotent per site — a duplicated delivery of the same payload must
never double-count cache or metric deltas."""

import numpy as np
import pytest

from repro.core.backends import FastCPUBackend
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisorConfig

from tests.conftest import evolved_genome


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=6, key=i)
        for i in range(cfg.population_size)
    ]


def _payload(site, hits=3, misses=2, size=5):
    return {
        "site": site,
        "phase_seconds": {"evaluate": 0.25},
        "cache_delta": {"hits": hits, "misses": misses},
        "cache_size": size,
        "genomes": 3,
        "metrics": None,
    }


class TestMergeIdempotency:
    def test_duplicate_site_folds_once(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            payload = _payload("gen=0|shard=0|attempt=0")
            backend._merge_shard_telemetry([payload, dict(payload)])
            assert backend._shard_cache["hits"] == 3
            assert backend._shard_cache["misses"] == 2
        finally:
            backend.close()

    def test_distinct_attempts_both_fold(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            backend._merge_shard_telemetry(
                [
                    _payload("gen=0|shard=0|attempt=0"),
                    _payload("gen=0|shard=0|attempt=1"),
                    _payload("gen=0|shard=1|attempt=0"),
                ]
            )
            assert backend._shard_cache["hits"] == 9
            assert backend._shard_cache["misses"] == 6
        finally:
            backend.close()

    def test_siteless_legacy_payloads_still_merge(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            legacy = _payload("")
            backend._merge_shard_telemetry([legacy, dict(legacy)])
            # no site -> no dedup key -> both fold (pre-site behavior)
            assert backend._shard_cache["hits"] == 6
        finally:
            backend.close()


@pytest.mark.slow
class TestCrashRetryAccounting:
    def test_respawned_shard_counts_once(self):
        """seed=3 crashes shard 0's first attempt; the respawned retry
        succeeds.  Fitness stays bit-identical and the surviving
        attempt's telemetry is folded exactly once (cache hits+misses
        equal one lookup per (genome, episode))."""
        cfg = _cfg()
        clean_backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=2)
        genomes = _genomes(cfg)
        try:
            clean_backend.evaluate(genomes)
            clean_info = clean_backend.cache_info()
        finally:
            clean_backend.close()
        clean = {g.key: g.fitness for g in genomes}

        backend = FastCPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            workers=2,
            fault_plan=FaultPlan.parse("seed=3,worker.crash@0.5"),
            supervisor=SupervisorConfig(
                shard_timeout=3.0,
                max_retries=2,
                backoff_base=0.0,
                join_timeout=5.0,
                disable_after=99,
            ),
        )
        chaotic = _genomes(cfg)
        try:
            backend.evaluate(chaotic)
            info = backend.cache_info()
        finally:
            backend.close()
        assert {g.key: g.fitness for g in chaotic} == clean
        assert backend._supervisor.respawns >= 1
        # the crashed attempt's payload never arrives and the retry's
        # folds exactly once, so the merged cache deltas equal a clean
        # 2-worker run's — a double merge would inflate them by a shard
        assert info["hits"] + info["misses"] == (
            clean_info["hits"] + clean_info["misses"]
        )
