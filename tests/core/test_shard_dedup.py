"""S3: shard telemetry deltas merge exactly once, even across retries.

A crashed-then-respawned worker re-runs its shard; each attempt's
payload carries a unique ``gen|shard|attempt`` site, and the merge is
idempotent per site — a duplicated delivery of the same payload must
never double-count cache or metric deltas."""

import numpy as np
import pytest

from repro.core.backends import CompiledCPUBackend, FastCPUBackend
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisorConfig

from tests.conftest import evolved_genome


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=6, key=i)
        for i in range(cfg.population_size)
    ]


def _payload(site, hits=3, misses=2, size=5):
    return {
        "site": site,
        "phase_seconds": {"evaluate": 0.25},
        "cache_delta": {"hits": hits, "misses": misses},
        "cache_size": size,
        "genomes": 3,
        "metrics": None,
    }


class TestMergeIdempotency:
    def test_duplicate_site_folds_once(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            payload = _payload("gen=0|shard=0|attempt=0")
            backend._merge_shard_telemetry([payload, dict(payload)])
            assert backend._shard_cache["hits"] == 3
            assert backend._shard_cache["misses"] == 2
        finally:
            backend.close()

    def test_distinct_attempts_both_fold(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            backend._merge_shard_telemetry(
                [
                    _payload("gen=0|shard=0|attempt=0"),
                    _payload("gen=0|shard=0|attempt=1"),
                    _payload("gen=0|shard=1|attempt=0"),
                ]
            )
            assert backend._shard_cache["hits"] == 9
            assert backend._shard_cache["misses"] == 6
        finally:
            backend.close()

    def test_siteless_legacy_payloads_still_merge(self):
        cfg = _cfg()
        backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        try:
            legacy = _payload("")
            backend._merge_shard_telemetry([legacy, dict(legacy)])
            # no site -> no dedup key -> both fold (pre-site behavior)
            assert backend._shard_cache["hits"] == 6
        finally:
            backend.close()


@pytest.mark.slow
class TestCrashRetryAccounting:
    def test_respawned_shard_counts_once(self):
        """seed=3 crashes shard 0's first attempt; the respawned retry
        succeeds.  Fitness stays bit-identical and the surviving
        attempt's telemetry is folded exactly once (cache hits+misses
        equal one lookup per (genome, episode))."""
        cfg = _cfg()
        clean_backend = FastCPUBackend("cartpole", cfg, base_seed=1, workers=2)
        genomes = _genomes(cfg)
        try:
            clean_backend.evaluate(genomes)
            clean_info = clean_backend.cache_info()
        finally:
            clean_backend.close()
        clean = {g.key: g.fitness for g in genomes}

        backend = FastCPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            workers=2,
            fault_plan=FaultPlan.parse("seed=3,worker.crash@0.5"),
            supervisor=SupervisorConfig(
                shard_timeout=3.0,
                max_retries=2,
                backoff_base=0.0,
                join_timeout=5.0,
                disable_after=99,
            ),
        )
        chaotic = _genomes(cfg)
        try:
            backend.evaluate(chaotic)
            info = backend.cache_info()
        finally:
            backend.close()
        assert {g.key: g.fitness for g in chaotic} == clean
        assert backend._supervisor.respawns >= 1
        # the crashed attempt's payload never arrives and the retry's
        # folds exactly once, so the merged cache deltas equal a clean
        # 2-worker run's — a double merge would inflate them by a shard
        assert info["hits"] + info["misses"] == (
            clean_info["hits"] + clean_info["misses"]
        )


class TestShardSizeAccounting:
    """Cache *sizes* are absolute snapshots, not deltas.

    Before the fix, ``_merge_shard_telemetry`` folded each payload's
    ``cache_size`` in arrival order, so the reported aggregate
    depended on which shard's payload happened to land last.  The
    contract is now: size = sum over shard slots of each slot's most
    recent report, which is order-independent and survives retries,
    fallbacks, and duplicate deliveries.
    """

    def _backend(self, workers=0, cls=FastCPUBackend):
        return cls("cartpole", _cfg(), base_seed=1, workers=workers)

    def test_size_is_order_independent_sum_over_slots(self):
        payloads = [
            _payload("gen=0|shard=0|attempt=0", size=5),
            _payload("gen=0|shard=1|attempt=0", size=7),
        ]
        sizes = []
        for ordering in (payloads, payloads[::-1]):
            backend = self._backend()
            try:
                backend._merge_shard_telemetry(list(ordering))
                sizes.append(backend.cache_info()["size"])
            finally:
                backend.close()
        assert sizes == [12, 12], "aggregate size must not depend on order"

    def test_duplicate_delivery_does_not_change_size(self):
        backend = self._backend()
        try:
            payload = _payload("gen=0|shard=0|attempt=0", size=5)
            backend._merge_shard_telemetry([payload, dict(payload)])
            assert backend.cache_info()["size"] == 5
        finally:
            backend.close()

    def test_retry_attempt_replaces_same_slot(self):
        """A respawned shard's report supersedes the dead attempt's —
        the slot is the shard index, not the attempt."""
        backend = self._backend()
        try:
            backend._merge_shard_telemetry(
                [
                    _payload("gen=0|shard=0|attempt=0", size=5),
                    _payload("gen=0|shard=1|attempt=0", size=7),
                    _payload("gen=0|shard=0|attempt=1", size=9),
                ]
            )
            assert backend.cache_info()["size"] == 9 + 7
        finally:
            backend.close()

    def test_next_generation_report_replaces_slot(self):
        backend = self._backend()
        try:
            backend._merge_shard_telemetry(
                [_payload("gen=0|shard=0|attempt=0", size=5)]
            )
            backend._merge_shard_telemetry(
                [_payload("gen=1|shard=0|attempt=0", size=11)]
            )
            assert backend.cache_info()["size"] == 11
        finally:
            backend.close()

    def test_fallback_payload_keeps_previous_size(self):
        """In-parent degradation did not touch the dead worker's cache,
        so its fallback payload must not zero the slot's size."""
        backend = self._backend()
        try:
            backend._merge_shard_telemetry(
                [
                    _payload("gen=0|shard=0|attempt=0", size=5),
                    _payload("gen=0|shard=1|attempt=0", size=7),
                ]
            )
            backend._merge_shard_telemetry(
                [
                    _payload("gen=1|shard=0|fallback", size=0),
                    _payload("gen=1|shard=1|attempt=0", size=8),
                ]
            )
            assert backend.cache_info()["size"] == 5 + 8
        finally:
            backend.close()

    def test_compile_sizes_follow_the_same_contract(self):
        backend = self._backend(cls=CompiledCPUBackend)
        try:
            first = _payload("gen=0|shard=0|attempt=0", size=0)
            first["compile_delta"] = {"hits": 2, "misses": 1}
            first["compile_size"] = 4
            second = _payload("gen=0|shard=1|attempt=0", size=0)
            second["compile_delta"] = {"hits": 1, "misses": 2}
            second["compile_size"] = 6
            backend._merge_shard_telemetry([second, first, dict(first)])
            info = backend.compile_cache_info()
            assert info["size"] == 10
            assert info["hits"] == 3
            assert info["misses"] == 3
        finally:
            backend.close()
