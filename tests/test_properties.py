"""Cross-module property-based tests.

These pin down the system-level invariants DESIGN.md promises, over
randomly evolved genomes and random hardware configurations:

* the functional INAX device agrees with the software forward pass for
  whole waves, end to end;
* LPT scheduling never loses to in-order for any network/PE count;
* the analytic scheduler is monotone in episode length and population;
* checkpoints round-trip losslessly through JSON;
* the full mutate/crossover/decode pipeline never produces a cycle,
  a dangling connection, or a non-finite output.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.inax.accelerator import INAX, INAXConfig, schedule_generation
from repro.inax.compiler import compile_genome
from repro.inax.pu import ProcessingUnit, PUCosts
from repro.neat.checkpoint import checkpoint_to_dict, population_from_dict
from repro.neat.config import NEATConfig
from repro.neat.crossover import crossover
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork
from repro.neat.population import Population

from tests.conftest import evolved_genome
from tests.neat.test_genome import _has_cycle


@st.composite
def evolved_setup(draw, max_mutations=20):
    """(config, tracker, rng, genome) with a randomly evolved genome."""
    num_inputs = draw(st.integers(1, 5))
    num_outputs = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    mutations = draw(st.integers(0, max_mutations))
    config = NEATConfig(num_inputs=num_inputs, num_outputs=num_outputs)
    tracker = InnovationTracker(num_outputs)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(config, tracker, rng, mutations=mutations)
    return config, tracker, rng, genome


@settings(max_examples=30, deadline=None)
@given(setup=evolved_setup(), num_pes=st.integers(1, 6))
def test_device_wave_matches_software(setup, num_pes):
    """A whole wave through the stepwise device equals per-net software."""
    config, tracker, rng, genome = setup
    genomes = [genome]
    for key in (101, 102):
        genomes.append(evolved_genome(config, tracker, rng, mutations=5, key=key))
    hw_configs = [compile_genome(g, config) for g in genomes]
    nets = [FeedForwardNetwork.create(g, config) for g in genomes]

    device = INAX(num_pus=len(genomes), num_pes_per_pu=num_pes)
    device.begin_wave(hw_configs)
    for _ in range(3):
        x = rng.standard_normal(config.num_inputs)
        outputs = device.step({i: x for i in range(len(genomes))})
        for i, net in enumerate(nets):
            assert np.array_equal(outputs[i], net.activate(x))
    device.end_wave()


@settings(max_examples=30, deadline=None)
@given(setup=evolved_setup(), num_pes=st.integers(1, 6))
def test_lpt_never_slower_property(setup, num_pes):
    config, _, _, genome = setup
    hw = compile_genome(genome, config)
    inorder = ProcessingUnit(num_pes, pu_costs=PUCosts(schedule="inorder"))
    lpt = ProcessingUnit(num_pes, pu_costs=PUCosts(schedule="lpt"))
    inorder.load(hw)
    lpt.load(hw)
    assert lpt.step_cycles() <= inorder.step_cycles()


@settings(max_examples=20, deadline=None)
@given(
    setup=evolved_setup(max_mutations=10),
    steps=st.integers(1, 10),
    extra=st.integers(1, 10),
)
def test_schedule_monotone_in_steps(setup, steps, extra):
    """More env steps can never cost fewer cycles."""
    config, tracker, rng, genome = setup
    hw = compile_genome(genome, config)
    cfg = INAXConfig(num_pus=2, num_pes_per_pu=2)
    short = schedule_generation(cfg, [hw], [steps])
    long = schedule_generation(cfg, [hw], [steps + extra])
    assert long.total_cycles > short.total_cycles
    assert long.steps == short.steps + extra


@settings(max_examples=20, deadline=None)
@given(setup=evolved_setup(max_mutations=8), copies=st.integers(1, 5))
def test_schedule_monotone_in_population(setup, copies):
    """More individuals can never cost fewer cycles."""
    config, _, _, genome = setup
    hw = compile_genome(genome, config)
    cfg = INAXConfig(num_pus=2, num_pes_per_pu=1)
    small = schedule_generation(cfg, [hw], [5])
    large = schedule_generation(cfg, [hw] * (copies + 1), [5] * (copies + 1))
    assert large.total_cycles >= small.total_cycles
    assert large.individuals == copies + 1


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    generations=st.integers(0, 3),
    pop_size=st.integers(5, 15),
)
def test_checkpoint_roundtrip_property(seed, generations, pop_size):
    """checkpoint -> restore -> checkpoint is the identity on the payload."""
    config = NEATConfig(num_inputs=2, num_outputs=2, population_size=pop_size)
    population = Population(config, seed=seed)
    rng = np.random.default_rng(seed)

    def evaluate(genomes):
        for g in genomes:
            g.fitness = float(rng.normal())

    for _ in range(generations):
        population.advance(evaluate)

    first = checkpoint_to_dict(population)
    second = checkpoint_to_dict(population_from_dict(first))
    assert first == second


@settings(max_examples=25, deadline=None)
@given(setup=evolved_setup(), seed=st.integers(0, 10_000))
def test_crossover_decode_pipeline_is_sound(setup, seed):
    """Crossover of two evolved parents always decodes and evaluates."""
    config, tracker, rng, parent_a = setup
    parent_b = evolved_genome(config, tracker, rng, mutations=8, key=500)
    parent_a.fitness, parent_b.fitness = 1.0, 1.0
    child = crossover(parent_a, parent_b, 999, config, np.random.default_rng(seed))

    assert not _has_cycle(child.connections.keys())
    for in_node, out_node in child.connections:
        assert out_node in child.nodes
        if in_node >= 0:
            assert in_node in child.nodes

    net = FeedForwardNetwork.create(child, config)
    out = net.activate(np.zeros(config.num_inputs))
    assert out.shape == (config.num_outputs,)
    assert np.isfinite(out).all()


@settings(max_examples=20, deadline=None)
@given(setup=evolved_setup())
def test_compiled_config_words_consistent(setup):
    """DMA word accounting always matches the decoded structure."""
    config, _, _, genome = setup
    hw = compile_genome(genome, config)
    net = FeedForwardNetwork.create(genome, config)
    assert hw.num_connections == net.num_macs
    assert hw.config_words == net.num_macs + 2 * net.num_evaluated_nodes
    assert hw.value_buffer_words == len(net.input_keys) + net.num_evaluated_nodes
