"""Unit tests for the OpenAI-ES baseline."""

import numpy as np
import pytest

from repro.ea.es import ESConfig, OpenAIES, centered_ranks


class TestCenteredRanks:
    def test_range_and_mean(self):
        shaped = centered_ranks(np.array([10.0, -3.0, 5.0, 0.0]))
        assert shaped.min() == -0.5
        assert shaped.max() == 0.5
        assert abs(shaped.mean()) < 1e-12

    def test_order_preserved(self):
        values = np.array([1.0, 3.0, 2.0])
        shaped = centered_ranks(values)
        assert shaped[1] > shaped[2] > shaped[0]

    def test_scale_invariant(self):
        a = centered_ranks(np.array([1.0, 2.0, 3.0]))
        b = centered_ranks(np.array([10.0, 2000.0, 3e6]))
        assert np.allclose(a, b)

    def test_single_value(self):
        assert centered_ranks(np.array([7.0]))[0] == 0.0


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"population_size": 7},  # odd
            {"sigma": 0.0},
            {"learning_rate": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ESConfig(**kwargs)


class TestOpenAIES:
    def test_ask_is_mirrored(self):
        es = OpenAIES(5, ESConfig(population_size=8), seed=0)
        candidates = es.ask()
        assert candidates.shape == (8, 5)
        # pair rows are mirrored around theta (initially zero)
        assert np.allclose(candidates[0::2], -candidates[1::2])

    def test_tell_rejects_wrong_count(self):
        es = OpenAIES(3, ESConfig(population_size=8), seed=0)
        es.ask()
        with pytest.raises(ValueError, match="expected 8"):
            es.tell(np.zeros(5))

    def test_moves_toward_better_direction(self):
        es = OpenAIES(2, ESConfig(population_size=64, sigma=0.1,
                                  learning_rate=0.5, weight_decay=0.0), seed=1)
        candidates = es.ask()
        # fitness = first coordinate: the update must increase theta[0]
        es.tell(candidates[:, 0])
        assert es.theta[0] > 0.0
        assert abs(es.theta[1]) < es.theta[0]

    def test_solves_sphere(self):
        target = np.array([0.7, -1.2])

        def sphere(params, seed):
            return -float(np.sum((params - target) ** 2))

        es = OpenAIES(
            2,
            ESConfig(population_size=32, sigma=0.2, learning_rate=0.1),
            seed=0,
        )
        result = es.run(sphere, max_generations=120)
        assert np.allclose(es.theta, target, atol=0.15)
        assert result.best_fitness > -0.1
        assert result.evaluations == result.generations * 32

    def test_threshold_stops_early(self):
        es = OpenAIES(2, ESConfig(population_size=8), seed=0)
        result = es.run(lambda p, s: 100.0, max_generations=50,
                        fitness_threshold=1.0)
        assert result.solved
        assert result.generations == 1

    def test_history_monotone_best(self):
        es = OpenAIES(2, ESConfig(population_size=16), seed=2)
        result = es.run(
            lambda p, s: -float(np.sum(p**2)), max_generations=20
        )
        assert len(result.history) == 20
        assert result.best_fitness == max(result.history)

    def test_deterministic_under_seed(self):
        def fitness(params, seed):
            return -float(np.sum(params**2))

        runs = []
        for _ in range(2):
            es = OpenAIES(3, ESConfig(population_size=8), seed=9)
            runs.append(es.run(fitness, max_generations=5).history)
        assert runs[0] == runs[1]

    def test_weight_decay_shrinks_theta(self):
        es = OpenAIES(
            4,
            ESConfig(population_size=8, weight_decay=0.5, learning_rate=1e-9),
            seed=0,
        )
        es.theta = np.ones(4)
        candidates = es.ask()
        es.tell(np.zeros(len(candidates)))
        assert np.all(np.abs(es.theta) < 1.0)
