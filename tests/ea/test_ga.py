"""Unit tests for the fixed-topology GA baseline."""

import numpy as np
import pytest

from repro.ea.ga import GAConfig, SimpleGA


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"truncation": 0.0},
            {"truncation": 1.5},
            {"mutation_sigma": 0.0},
            {"elitism": -1},
            {"elitism": 64},
            {"crossover_rate": 2.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


class TestSimpleGA:
    def test_population_shape(self):
        ga = SimpleGA(7, GAConfig(population_size=10), seed=0)
        assert ga.population.shape == (10, 7)

    def test_step_rejects_wrong_count(self):
        ga = SimpleGA(3, GAConfig(population_size=10), seed=0)
        with pytest.raises(ValueError, match="expected 10"):
            ga.step(np.zeros(4))

    def test_elite_preserved_exactly(self):
        ga = SimpleGA(4, GAConfig(population_size=10, elitism=2), seed=0)
        fitnesses = np.arange(10, dtype=np.float64)
        best = ga.population[9].copy()
        second = ga.population[8].copy()
        ga.step(fitnesses)
        assert np.array_equal(ga.population[0], best)
        assert np.array_equal(ga.population[1], second)

    def test_children_derive_from_survivors(self):
        ga = SimpleGA(
            3,
            GAConfig(
                population_size=8, truncation=0.25, mutation_sigma=1e-9
            ),
            seed=1,
        )
        fitnesses = np.arange(8, dtype=np.float64)
        survivors = ga.population[np.argsort(fitnesses)[::-1][:2]].copy()
        ga.step(fitnesses)
        for child in ga.population[1:]:
            distances = [np.abs(child - s).max() for s in survivors]
            assert min(distances) < 1e-6

    def test_solves_sphere(self):
        target = np.array([0.5, -0.5, 1.0])

        def sphere(params, seed):
            return -float(np.sum((params - target) ** 2))

        ga = SimpleGA(
            3, GAConfig(population_size=40, mutation_sigma=0.1), seed=0
        )
        result = ga.run(sphere, max_generations=80)
        assert result.best_fitness > -0.05
        assert np.allclose(result.best_params, target, atol=0.3)

    def test_crossover_path(self):
        ga = SimpleGA(
            6,
            GAConfig(
                population_size=10, crossover_rate=1.0, mutation_sigma=1e-9
            ),
            seed=3,
        )
        fitnesses = np.arange(10, dtype=np.float64)
        ga.step(fitnesses)  # must not raise; children mix parents

    def test_threshold_stops_early(self):
        ga = SimpleGA(2, GAConfig(population_size=6), seed=0)
        result = ga.run(
            lambda p, s: 1.0, max_generations=50, fitness_threshold=0.5
        )
        assert result.solved and result.generations == 1

    def test_deterministic_under_seed(self):
        def fitness(params, seed):
            return -float(np.sum(params**2))

        histories = []
        for _ in range(2):
            ga = SimpleGA(3, GAConfig(population_size=8), seed=5)
            histories.append(ga.run(fitness, max_generations=5).history)
        assert histories[0] == histories[1]
