"""Unit tests for the fixed-topology policy wrapper."""

import numpy as np
import pytest

from repro.ea.policy import FixedTopologyPolicy
from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum


def test_flat_round_trip():
    policy = FixedTopologyPolicy(
        CartPole(), hidden=(8,), rng=np.random.default_rng(0)
    )
    flat = policy.get_flat()
    assert flat.shape == (policy.num_parameters,)
    perturbed = flat + 1.0
    policy.set_flat(perturbed)
    assert np.allclose(policy.get_flat(), perturbed)


def test_set_flat_rejects_wrong_size():
    policy = FixedTopologyPolicy(CartPole(), hidden=(4,))
    with pytest.raises(ValueError):
        policy.set_flat(np.zeros(3))


def test_parameters_match_mlp():
    policy = FixedTopologyPolicy(CartPole(), hidden=(8, 8))
    # 4 -> 8 -> 8 -> 2 with biases
    expected = 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2
    assert policy.num_parameters == expected


def test_policy_fn_output_width():
    policy = FixedTopologyPolicy(Pendulum(), hidden=(4,))
    out = policy.policy_fn()(np.zeros(3))
    assert out.shape == (1,)


def test_fitness_is_deterministic():
    policy = FixedTopologyPolicy(
        CartPole(), hidden=(4,), rng=np.random.default_rng(1)
    )
    flat = policy.get_flat()
    a = policy.fitness(flat, episodes=2, seed=3, max_steps=100)
    b = policy.fitness(flat, episodes=2, seed=3, max_steps=100)
    assert a == b


def test_fitness_depends_on_parameters():
    policy = FixedTopologyPolicy(
        CartPole(), hidden=(4,), rng=np.random.default_rng(1)
    )
    rng = np.random.default_rng(0)
    values = {
        policy.fitness(rng.standard_normal(policy.num_parameters), seed=3,
                       max_steps=200)
        for _ in range(6)
    }
    assert len(values) > 1  # different weights, different behaviour
