"""The streaming HealthMonitor: reporter wiring, telemetry emission,
sample assembly from real backends, and health.json determinism."""

import json

from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.neat.population import GenerationStats
from repro.obs.detectors import HealthConfig
from repro.obs.events import validate_health_report
from repro.obs.monitor import (
    SAMPLE_SPAN,
    HealthMonitor,
    build_sample,
    run_attribution,
)
from repro.telemetry import TelemetrySession


def _stats(generation=0, **overrides):
    base = dict(
        generation=generation,
        best_fitness=10.0,
        mean_fitness=5.0,
        num_species=3,
        best_genome_key=1,
        mean_nodes=4.0,
        mean_connections=6.0,
        population_size=20,
        extras={},
    )
    base.update(overrides)
    return GenerationStats(**base)


class TestBuildSample:
    def test_fixed_fields(self):
        sample = build_sample(_stats(generation=4))
        assert sample.generation == 4
        assert sample.best_fitness == 10.0
        assert sample.num_species == 3
        assert sample.population_size == 20

    def test_extras_copied(self):
        sample = build_sample(
            _stats(extras={"quarantined": 2.0, "pack_eff": 0.4,
                           "fallback_waves": 1.0})
        )
        assert sample.quarantined == 2.0
        assert sample.pack_eff == 0.4
        assert sample.fallback_waves == 1.0

    def test_backend_probes(self):
        class FakeReport:
            waves = 3
            setup_cycles = 100.0
            prefetch_hidden_cycles = 40.0

        class FakeRecord:
            cycle_report = FakeReport()

        class FakePipeline:
            prefetch = True

        class FakeBackend:
            records = [FakeRecord()]
            pipeline = FakePipeline()

            def cache_info(self):
                return {"hits": 7, "misses": 3, "size": 5}

        sample = build_sample(_stats(), FakeBackend())
        assert sample.cache_hits == 7.0
        assert sample.cache_misses == 3.0
        assert sample.waves == 3
        assert sample.setup_cycles == 100.0
        assert sample.prefetch_hidden_cycles == 40.0
        assert sample.prefetch_enabled is True

    def test_deferred_cycle_report_tolerated(self):
        class FakeRecord:
            cycle_report = None  # overlap mode: priced later in drain()

        class FakeBackend:
            records = [FakeRecord()]

        sample = build_sample(_stats(), FakeBackend())
        assert sample.waves is None


class TestMonitorStreaming:
    def test_emits_sample_and_event_spans(self):
        session = TelemetrySession()
        session.install()
        try:
            monitor = HealthMonitor(HealthConfig(species_floor=2))
            monitor.on_generation(_stats(generation=0, num_species=3))
            monitor.on_generation(_stats(generation=1, num_species=1))
            names = [s.name for s in session.tracer.spans]
        finally:
            session.uninstall()
        assert names.count(SAMPLE_SPAN) == 2
        assert "health.species.collapse" in names
        snapshot = session.metrics.snapshot()
        assert snapshot["health.events.warning"]["value"] == 1

    def test_silent_without_telemetry(self):
        monitor = HealthMonitor()
        monitor.on_generation(_stats())
        assert len(monitor.samples) == 1

    def test_finalize_idempotent_and_write(self, tmp_path):
        monitor = HealthMonitor()
        monitor.on_generation(_stats())
        path = tmp_path / "health.json"
        first = monitor.write(path)
        second = monitor.write(path)
        assert first.to_json() == second.to_json()
        payload = json.loads(path.read_text())
        assert validate_health_report(payload) == []
        assert payload["generations"] == 1


class TestReattach:
    """Satellite regression: resubmitted jobs reuse a monitor instance."""

    def _population(self):
        from repro.neat.population import Population

        return Population(NEATConfig(population_size=8), seed=0)

    def test_attach_twice_does_not_double_register(self):
        population = self._population()
        monitor = HealthMonitor()
        monitor.attach(population)
        monitor.attach(population)
        registered = [
            r for r in population.reporters._reporters if r is monitor
        ]
        assert len(registered) == 1
        # one attach, one sample per generation — not two
        session = TelemetrySession()
        with session:
            monitor.on_generation(_stats(generation=0))
        names = [s.name for s in session.tracer.spans]
        assert names.count(SAMPLE_SPAN) == 1

    def test_reattach_after_finalize_rearms(self):
        population = self._population()
        monitor = HealthMonitor()
        monitor.attach(population)
        monitor.on_generation(_stats(generation=0))
        monitor.finalize()
        # a resubmitted job re-attaches the same monitor: the finalize
        # latch must reopen instead of refusing the new run's samples
        monitor.attach(population)
        monitor.on_generation(_stats(generation=1))
        assert len(monitor.samples) == 2
        monitor.finalize()
        monitor.finalize()  # still idempotent within the new run
        assert monitor.report().generations == 2

    def test_e3_rerun_with_same_monitor(self):
        monitor = HealthMonitor()
        for _ in range(2):
            E3(
                "cartpole",
                backend="cpu",
                neat_config=NEATConfig(population_size=12),
                seed=5,
                health=monitor,
            ).run(max_generations=2)
        # both runs observed, no double-registration doubling samples
        assert len(monitor.samples) == 4


class TestRunAttribution:
    def test_filters_to_deterministic_keys(self):
        manifest = {
            "command": "run",
            "env": "cartpole",
            "backend": "inax",
            "seed": 7,
            "schedule": "lpt",
            "prefetch": True,
            "overlap": False,
            "git_commit": "abc",
            "git_dirty": False,
            "created_unix": 123.4,  # wall clock: must not leak
            "platform": "Linux",
        }
        run = run_attribution(manifest)
        assert "created_unix" not in run
        assert "platform" not in run
        assert run["schedule"] == "lpt"
        assert run["git_commit"] == "abc"

    def test_empty_manifest(self):
        assert run_attribution(None) == {}


class TestPlatformWiring:
    def test_e3_attaches_monitor_and_probes_backend(self, tmp_path):
        monitor = HealthMonitor()
        platform = E3(
            "cartpole",
            backend="inax",
            neat_config=NEATConfig(population_size=16),
            seed=7,
            health=monitor,
        )
        result = platform.run(max_generations=2)
        assert len(monitor.samples) == result.generations
        # the INAX backend's cycle report feeds the sample stream
        assert monitor.samples[0].waves is not None
        assert monitor.samples[0].pack_eff is not None
        # run() finalizes the monitor
        report = monitor.report()
        assert report.generations == result.generations

    def test_identical_runs_identical_reports(self):
        def run_once():
            monitor = HealthMonitor()
            E3(
                "cartpole",
                backend="cpu",
                neat_config=NEATConfig(population_size=12),
                seed=5,
                health=monitor,
            ).run(max_generations=3)
            return monitor.report().to_json()

        assert run_once() == run_once()
