"""Unit tests for the watchtower detector registry.

Every detector is exercised with a synthetic sample stream that walks
it across its threshold, plus the negative case right at the bar.
Determinism (same samples, same events, twice) is asserted for the
whole registry at once.
"""

import json

import pytest

from repro.obs.detectors import (
    DETECTOR_REGISTRY,
    GenerationSample,
    HealthConfig,
    build_detectors,
    evaluate_samples,
)
from repro.obs.events import (
    HealthEvent,
    HealthReport,
    validate_health_report,
)

EXPECTED_DETECTORS = {
    "fitness.stagnation",
    "fitness.regression",
    "species.collapse",
    "cache.hit_rate",
    "quarantine.storm",
    "fallback.storm",
    "shard.instability",
    "inax.occupancy",
    "inax.prefetch",
    "fabric.instability",
    "fabric.eviction_storm",
}


def _events(samples, config=None, names=None):
    events, _, _ = evaluate_samples(samples, config, names)
    return events


def _named(events, name):
    return [e for e in events if e.detector == name]


class TestRegistry:
    def test_all_expected_detectors_registered(self):
        assert set(DETECTOR_REGISTRY) == EXPECTED_DETECTORS

    def test_build_all_sorted(self):
        detectors = build_detectors()
        assert [d.name for d in detectors] == sorted(EXPECTED_DETECTORS)

    def test_build_subset_and_unknown(self):
        only = build_detectors(names=["quarantine.storm"])
        assert [d.name for d in only] == ["quarantine.storm"]
        with pytest.raises(ValueError, match="unknown detector"):
            build_detectors(names=["no.such"])


class TestFitnessStagnation:
    def test_warns_then_goes_critical(self):
        config = HealthConfig(stagnation_window=3)
        samples = [
            GenerationSample(generation=g, best_fitness=5.0)
            for g in range(8)
        ]
        events = _named(_events(samples, config), "fitness.stagnation")
        assert [e.severity for e in events] == ["warning", "critical"]
        assert events[0].site == "gen=3"
        assert events[1].site == "gen=6"
        assert events[0].evidence["stagnant_generations"] == 3

    def test_improvement_resets(self):
        config = HealthConfig(stagnation_window=3)
        samples = [
            GenerationSample(generation=g, best_fitness=float(g // 2))
            for g in range(10)
        ]
        assert not _named(_events(samples, config), "fitness.stagnation")

    def test_skips_missing_fitness(self):
        samples = [GenerationSample(generation=g) for g in range(30)]
        assert not _named(_events(samples), "fitness.stagnation")


class TestFitnessRegression:
    def test_fires_once_per_excursion(self):
        config = HealthConfig(regression_tolerance=0.25)
        bests = [100.0, 100.0, 60.0, 55.0, 100.0, 60.0]
        samples = [
            GenerationSample(generation=g, best_fitness=b)
            for g, b in enumerate(bests)
        ]
        events = _named(_events(samples, config), "fitness.regression")
        assert [e.site for e in events] == ["gen=2", "gen=5"]
        assert all(e.severity == "warning" for e in events)

    def test_critical_on_deep_drop(self):
        samples = [
            GenerationSample(generation=0, best_fitness=100.0),
            GenerationSample(generation=1, best_fitness=10.0),
        ]
        events = _named(_events(samples), "fitness.regression")
        assert [e.severity for e in events] == ["critical"]
        assert events[0].evidence["drop_fraction"] == pytest.approx(0.9)

    def test_tolerated_wobble_is_quiet(self):
        samples = [
            GenerationSample(generation=0, best_fitness=100.0),
            GenerationSample(generation=1, best_fitness=80.0),
        ]
        assert not _named(_events(samples), "fitness.regression")


class TestSpeciesCollapse:
    def test_fires_on_transition_below_floor(self):
        counts = [3, 4, 1, 1, 3, 1]
        samples = [
            GenerationSample(generation=g, num_species=c)
            for g, c in enumerate(counts)
        ]
        events = _named(_events(samples), "species.collapse")
        assert [e.site for e in events] == ["gen=2", "gen=5"]
        assert events[0].evidence["peak"] == 4

    def test_quiet_when_never_diverse(self):
        samples = [
            GenerationSample(generation=g, num_species=1) for g in range(5)
        ]
        assert not _named(_events(samples), "species.collapse")


class TestCacheCollapse:
    def test_decode_collapse_after_warmup(self):
        config = HealthConfig(
            cache_warmup_generations=2, cache_min_lookups=10
        )
        # healthy hit rates, then a collapse at gen 3
        samples = [
            GenerationSample(
                generation=0, cache_hits=0.0, cache_misses=20.0
            ),
            GenerationSample(
                generation=1, cache_hits=18.0, cache_misses=22.0
            ),
            GenerationSample(
                generation=2, cache_hits=36.0, cache_misses=24.0
            ),
            GenerationSample(
                generation=3, cache_hits=37.0, cache_misses=43.0
            ),
        ]
        events = _named(_events(samples, config), "cache.hit_rate")
        assert len(events) == 1
        assert events[0].site == "gen=3|cache=decode"
        assert events[0].evidence["hit_rate"] == pytest.approx(0.05)

    def test_warmup_generations_ignored(self):
        config = HealthConfig(cache_warmup_generations=5)
        samples = [
            GenerationSample(
                generation=g,
                cache_hits=0.0,
                cache_misses=float(20 * (g + 1)),
            )
            for g in range(4)
        ]
        assert not _named(_events(samples, config), "cache.hit_rate")

    def test_compile_cache_tracked_separately(self):
        config = HealthConfig(
            cache_warmup_generations=0, cache_min_lookups=10
        )
        samples = [
            GenerationSample(
                generation=0,
                cache_hits=50.0,
                cache_misses=10.0,
                compile_hits=0.0,
                compile_misses=40.0,
            ),
        ]
        events = _named(_events(samples, config), "cache.hit_rate")
        assert [e.site for e in events] == ["gen=0|cache=compile"]


class TestQuarantineStorm:
    def test_warning_and_critical_fractions(self):
        samples = [
            GenerationSample(
                generation=0, population_size=20, quarantined=2.0
            ),
            GenerationSample(
                generation=1, population_size=20, quarantined=9.0
            ),
        ]
        events = _named(_events(samples), "quarantine.storm")
        assert [e.severity for e in events] == ["warning", "critical"]
        assert events[1].evidence["quarantined"] == 7.0

    def test_below_threshold_quiet(self):
        config = HealthConfig(quarantine_warning_fraction=0.25)
        samples = [
            GenerationSample(
                generation=0, population_size=100, quarantined=2.0
            ),
        ]
        assert not _named(_events(samples, config), "quarantine.storm")


class TestFallbackStorm:
    def test_total_fallback_is_critical(self):
        samples = [
            GenerationSample(generation=0, fallback_waves=3.0, waves=3),
        ]
        events = _named(_events(samples), "fallback.storm")
        assert [e.severity for e in events] == ["critical"]

    def test_partial_fallback_warns(self):
        samples = [
            GenerationSample(generation=0, fallback_waves=2.0, waves=4),
        ]
        events = _named(_events(samples), "fallback.storm")
        assert [e.severity for e in events] == ["warning"]
        assert events[0].evidence["fraction"] == pytest.approx(0.5)

    def test_lone_fallback_is_info(self):
        samples = [
            GenerationSample(generation=0, fallback_waves=1.0, waves=10),
        ]
        events = _named(_events(samples), "fallback.storm")
        assert [e.severity for e in events] == ["info"]

    def test_cumulative_counter_deltas(self):
        samples = [
            GenerationSample(generation=0, fallback_waves=2.0, waves=4),
            GenerationSample(generation=1, fallback_waves=2.0, waves=4),
        ]
        events = _named(_events(samples), "fallback.storm")
        assert [e.site for e in events] == ["gen=0"]  # no new waves fell


class TestShardInstability:
    def test_retry_burst_warns_degraded_critical(self):
        samples = [
            GenerationSample(
                generation=0, shard_retries=2.0, shard_degraded=0.0
            ),
            GenerationSample(
                generation=1, shard_retries=2.0, shard_degraded=1.0
            ),
        ]
        events = _named(_events(samples), "shard.instability")
        assert [(e.severity, e.site) for e in events] == [
            ("warning", "gen=0"),
            ("critical", "gen=1"),
        ]

    def test_single_retry_quiet(self):
        samples = [
            GenerationSample(
                generation=0, shard_retries=1.0, shard_degraded=0.0
            ),
        ]
        assert not _named(_events(samples), "shard.instability")


class TestInaxOccupancy:
    def test_fires_on_transition(self):
        values = [0.5, 0.1, 0.08, 0.5, 0.1]
        samples = [
            GenerationSample(generation=g, pack_eff=v)
            for g, v in enumerate(values)
        ]
        events = _named(_events(samples), "inax.occupancy")
        assert [e.site for e in events] == ["gen=1", "gen=4"]


class TestInaxPrefetch:
    def test_low_hiding_fraction_warns(self):
        samples = [
            GenerationSample(
                generation=0,
                prefetch_enabled=True,
                waves=4,
                setup_cycles=90.0,
                prefetch_hidden_cycles=10.0,
            ),
        ]
        events = _named(_events(samples), "inax.prefetch")
        assert [e.severity for e in events] == ["warning"]
        assert events[0].evidence["hidden_fraction"] == pytest.approx(0.1)

    def test_disabled_prefetch_quiet(self):
        samples = [
            GenerationSample(
                generation=0,
                prefetch_enabled=False,
                waves=4,
                setup_cycles=90.0,
                prefetch_hidden_cycles=0.0,
            ),
        ]
        assert not _named(_events(samples), "inax.prefetch")

    def test_single_wave_exempt(self):
        samples = [
            GenerationSample(
                generation=0,
                prefetch_enabled=True,
                waves=1,
                setup_cycles=90.0,
                prefetch_hidden_cycles=0.0,
            ),
        ]
        assert not _named(_events(samples), "inax.prefetch")


class TestSampleRoundTrip:
    def test_to_attrs_skips_none(self):
        sample = GenerationSample(generation=3, best_fitness=1.5)
        attrs = sample.to_attrs()
        assert attrs == {"generation": 3, "best_fitness": 1.5}

    def test_from_attrs_ignores_unknown(self):
        sample = GenerationSample.from_attrs(
            {"generation": 2, "pack_eff": 0.5, "bogus": 1}
        )
        assert sample.generation == 2
        assert sample.pack_eff == 0.5

    def test_round_trip_identity(self):
        sample = GenerationSample(
            generation=7,
            best_fitness=10.0,
            quarantined=3.0,
            waves=2,
            prefetch_enabled=True,
        )
        assert GenerationSample.from_attrs(sample.to_attrs()) == sample


class TestDeterminismAndReport:
    def _stream(self):
        return [
            GenerationSample(
                generation=g,
                best_fitness=100.0,
                num_species=max(1, 4 - g),
                population_size=20,
                quarantined=float(g * 3),
                pack_eff=0.5 if g < 3 else 0.1,
            )
            for g in range(6)
        ]

    def test_same_stream_same_events(self):
        first = _events(self._stream())
        second = _events(self._stream())
        assert first == second

    def test_report_json_is_canonical_and_valid(self):
        events, names, count = evaluate_samples(self._stream())
        report = HealthReport.build(
            events, count, names, HealthConfig().to_dict()
        )
        text = report.to_json()
        assert text == report.to_json()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert validate_health_report(payload) == []
        rebuilt = HealthReport.from_dict(payload)
        assert rebuilt.to_json() == text

    def test_verdict_thresholds(self):
        healthy = HealthReport.build([], 3, [])
        assert healthy.verdict == "healthy"
        info = HealthReport.build(
            [HealthEvent("d", "info", "gen=0", "m")], 3, []
        )
        assert info.verdict == "healthy"
        warn = HealthReport.build(
            [HealthEvent("d", "warning", "gen=0", "m")], 3, []
        )
        assert warn.verdict == "degraded"
        crit = HealthReport.build(
            [HealthEvent("d", "critical", "gen=0", "m")], 3, []
        )
        assert crit.verdict == "critical"

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            HealthEvent("d", "fatal", "gen=0", "m")

    def test_validator_flags_mismatched_counts(self):
        report = HealthReport.build(
            [HealthEvent("d", "warning", "gen=0", "m")], 1, []
        )
        payload = json.loads(report.to_json())
        payload["severities"]["warning"] = 5
        assert any(
            "disagree" in problem
            for problem in validate_health_report(payload)
        )
