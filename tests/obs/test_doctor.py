"""The post-mortem doctor: exact replay from health.sample markers,
partial reconstruction from bare traces, and hot-spot attribution."""

import pytest

from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.obs.doctor import (
    diagnose,
    format_diagnosis,
    samples_from_trace,
)
from repro.obs.monitor import HealthMonitor, run_attribution
from repro.telemetry import TelemetrySession
from repro.telemetry.export import read_trace_jsonl


def _traced_run(tmp_path, monitor=None, generations=2):
    session = TelemetrySession()
    platform = E3(
        "cartpole",
        backend="inax",
        neat_config=NEATConfig(population_size=16),
        seed=7,
        telemetry=session,
        health=monitor,
    )
    platform.run(max_generations=generations)
    trace = tmp_path / "trace.jsonl"
    session.export(trace_path=str(trace))
    return trace, session


class TestExactReplay:
    def test_samples_round_trip_through_trace(self, tmp_path):
        monitor = HealthMonitor()
        trace, _ = _traced_run(tmp_path, monitor)
        samples, reconstructed = samples_from_trace(read_trace_jsonl(trace))
        assert not reconstructed
        assert samples == monitor.samples

    def test_doctor_reproduces_live_health_json(self, tmp_path):
        monitor = HealthMonitor()
        trace, session = _traced_run(tmp_path, monitor)
        live = monitor.report(
            run=run_attribution(session.manifest.to_dict())
            if session.manifest
            else None
        ).to_json()
        diagnosis = diagnose(trace)
        assert not diagnosis.reconstructed
        assert diagnosis.report.to_json() == live

    def test_diagnose_twice_is_identical(self, tmp_path):
        monitor = HealthMonitor()
        trace, _ = _traced_run(tmp_path, monitor)
        assert (
            diagnose(trace).report.to_json()
            == diagnose(trace).report.to_json()
        )


class TestReconstruction:
    def _rows(self):
        return [
            {"type": "span", "name": "phase.evaluate", "track": "host",
             "start": 0.0, "dur": 1.0, "span_id": 1,
             "attrs": {"generation": 0, "population": 20}},
            {"type": "span", "name": "resilience.quarantine.nonfinite",
             "track": "host", "start": 0.5, "dur": 0.0, "span_id": 2,
             "attrs": {"site": "gen=0|genome=3"}},
            {"type": "span", "name": "resilience.quarantine.nonfinite",
             "track": "host", "start": 0.6, "dur": 0.0, "span_id": 3,
             "attrs": {"site": "gen=0|genome=4"}},
            {"type": "span", "name": "phase.evaluate", "track": "host",
             "start": 2.0, "dur": 1.0, "span_id": 4,
             "attrs": {"generation": 1, "population": 20}},
            {"type": "span", "name": "resilience.shard.degraded",
             "track": "host", "start": 2.5, "dur": 0.0, "span_id": 5,
             "attrs": {"site": "gen=1|shard=0|attempt=2"}},
        ]

    def test_rebuilds_cumulative_counters(self):
        samples, reconstructed = samples_from_trace(self._rows())
        assert reconstructed
        assert len(samples) == 2
        assert samples[0].population_size == 20
        assert samples[0].quarantined == 2.0
        assert samples[1].quarantined == 2.0  # cumulative carries over
        assert samples[1].shard_degraded == 1.0
        assert samples[0].best_fitness is None  # unrecoverable: skipped

    def test_diagnosis_flags_reconstructed_events(self):
        diagnosis = diagnose(self._rows())
        assert diagnosis.reconstructed
        detectors = {e.detector for e in diagnosis.report.events}
        assert "quarantine.storm" in detectors
        assert "shard.instability" in detectors

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="no health.sample"):
            diagnose([{"type": "metric", "name": "x", "kind": "counter",
                       "value": 1}])

    def test_site_without_generation_skipped(self):
        rows = [
            {"type": "span", "name": "resilience.pool.respawn",
             "track": "host", "start": 0.0, "dur": 0.0, "span_id": 1,
             "attrs": {"site": "workers=2"}},
        ]
        samples, _ = samples_from_trace(rows)
        assert samples == []


class TestHotspots:
    def test_phase_and_pu_attribution(self, tmp_path):
        trace, _ = _traced_run(tmp_path, HealthMonitor())
        diagnosis = diagnose(trace)
        phases = [r for r in diagnosis.hotspots if r["kind"] == "phase"]
        pus = [r for r in diagnosis.hotspots if r["kind"] == "pu"]
        assert phases and pus
        # largest share first, fractions sum to ~1 within each kind
        assert phases[0]["value"] == max(r["value"] for r in phases)
        assert sum(r["fraction"] for r in phases) == pytest.approx(1.0)
        assert sum(r["fraction"] for r in pus) == pytest.approx(1.0)
        assert all(0.0 <= r["utilization"] <= 1.0 for r in pus)

    def test_format_renders_tables(self, tmp_path):
        trace, _ = _traced_run(tmp_path, HealthMonitor())
        text = format_diagnosis(diagnose(trace))
        assert "verdict:" in text
        assert "hot spots: host phases" in text
        assert "hot spots: INAX PUs" in text

    def test_to_dict_shape(self, tmp_path):
        trace, _ = _traced_run(tmp_path, HealthMonitor())
        payload = diagnose(trace).to_dict()
        assert set(payload) == {"report", "hotspots", "reconstructed"}
        assert payload["report"]["schema"] == "repro.health/v1"
