"""Watchtower under PR 4 chaos plans.

The satellite contract: a fault-ridden run must produce the expected
``HealthEvent`` kinds, and replaying the same :class:`FaultPlan` must
yield a **byte-identical** ``health.json`` — chaos is seeded, health
evaluation is pure, so the composition is deterministic end to end.
"""

from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.obs.detectors import HealthConfig
from repro.obs.monitor import HealthMonitor
from repro.resilience.faults import FaultPlan

NAN_SPEC = "seed=5,env.reward_nan@0.25"
WEDGE_SPEC = "seed=11,inax.wedge@0.35,env.reward_nan@0.1"


def _chaos_run(spec, backend="cpu", generations=2, **e3_kwargs):
    monitor = HealthMonitor(HealthConfig(quarantine_warning_fraction=0.05))
    platform = E3(
        "cartpole",
        backend=backend,
        neat_config=NEATConfig(population_size=16),
        seed=3,
        fault_plan=FaultPlan.parse(spec),
        health=monitor,
        **e3_kwargs,
    )
    platform.run(max_generations=generations)
    platform.backend.close()
    return monitor


class TestChaosEventKinds:
    def test_nan_storm_produces_quarantine_events(self):
        monitor = _chaos_run(NAN_SPEC)
        detectors = {e.detector for e in monitor.events}
        assert "quarantine.storm" in detectors
        sites = {e.site for e in monitor.events
                 if e.detector == "quarantine.storm"}
        # every generation of this plan quarantines someone
        assert sites  # at least one flagged generation
        assert all(site.startswith("gen=") for site in sites)

    def test_wedged_device_produces_fallback_events(self):
        monitor = _chaos_run(WEDGE_SPEC, backend="inax", fallback="cpu")
        detectors = {e.detector for e in monitor.events}
        assert "fallback.storm" in detectors

    def test_fault_free_run_is_quiet_on_resilience_detectors(self):
        monitor = HealthMonitor()
        platform = E3(
            "cartpole",
            backend="cpu",
            neat_config=NEATConfig(population_size=16),
            seed=3,
            health=monitor,
        )
        platform.run(max_generations=2)
        platform.backend.close()
        noisy = {"quarantine.storm", "fallback.storm", "shard.instability"}
        assert not {e.detector for e in monitor.events} & noisy


class TestChaosReplayDeterminism:
    def _health_bytes(self, tmp_path, name, spec, **kwargs):
        monitor = _chaos_run(spec, **kwargs)
        path = tmp_path / name
        monitor.write(path)
        return path.read_bytes()

    def test_replayed_plan_byte_identical_health_json(self, tmp_path):
        first = self._health_bytes(tmp_path, "a.json", NAN_SPEC)
        second = self._health_bytes(tmp_path, "b.json", NAN_SPEC)
        assert first == second

    def test_replayed_inax_chaos_byte_identical(self, tmp_path):
        first = self._health_bytes(
            tmp_path, "a.json", WEDGE_SPEC, backend="inax", fallback="cpu"
        )
        second = self._health_bytes(
            tmp_path, "b.json", WEDGE_SPEC, backend="inax", fallback="cpu"
        )
        assert first == second

    def test_different_seed_different_stream_still_valid(self, tmp_path):
        import json

        from repro.obs.events import validate_health_report

        payload = json.loads(
            self._health_bytes(
                tmp_path, "c.json", "seed=9,env.reward_nan@0.25"
            )
        )
        assert validate_health_report(payload) == []
