"""The bench-trajectory store and the regression gate."""

import json

import pytest

from repro.obs.trajectory import (
    Comparison,
    MetricSpec,
    bench_diff,
    extract_metrics,
    format_comparisons,
    latest_baseline,
    load_trajectory,
    record,
    save_trajectory,
)

PIPELINE_PAYLOAD = {
    "workload": "skewed",
    "reduction_vs_arrival": 0.6,
    "policies": {"arrival": {"total_cycles": 100.0}},
}
COMPILE_PAYLOAD = {
    "prep_speedup": 5.0,
    "total_speedup": 2.5,
    "bit_identical": True,
}


class TestExtractMetrics:
    def test_curated_pipeline(self):
        metrics = extract_metrics("pipeline", PIPELINE_PAYLOAD)
        assert set(metrics) == {"reduction_vs_arrival"}
        value, spec = metrics["reduction_vs_arrival"]
        assert value == 0.6
        assert spec.higher_is_better and not spec.noisy

    def test_curated_compile_is_noisy(self):
        metrics = extract_metrics("compile", COMPILE_PAYLOAD)
        assert set(metrics) == {"prep_speedup", "total_speedup"}
        assert all(spec.noisy for _, spec in metrics.values())

    def test_heuristic_for_unknown_bench(self):
        payload = {
            "decode_speedup": 3.0,
            "run_seconds": 1.5,
            "label": "x",
            "count": 5,
        }
        metrics = extract_metrics("mystery", payload)
        assert metrics["decode_speedup"][1].higher_is_better
        assert not metrics["run_seconds"][1].higher_is_better
        assert metrics["run_seconds"][1].noisy
        assert "label" not in metrics
        assert "count" not in metrics  # no direction hint

    def test_missing_curated_field_skipped(self):
        metrics = extract_metrics("pipeline", {"workload": "x"})
        assert metrics == {}


class TestStore:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        trajectory = load_trajectory(path)
        written = record(trajectory, "pipeline", PIPELINE_PAYLOAD, "c1")
        assert len(written) == 1
        save_trajectory(path, trajectory)
        reloaded = load_trajectory(path)
        assert reloaded["entries"][0]["value"] == 0.6
        assert reloaded["entries"][0]["commit"] == "c1"

    def test_same_commit_replaces(self):
        trajectory = load_trajectory("/nonexistent/none.json")
        record(trajectory, "pipeline", PIPELINE_PAYLOAD, "c1")
        record(
            trajectory, "pipeline",
            dict(PIPELINE_PAYLOAD, reduction_vs_arrival=0.7), "c1",
        )
        assert len(trajectory["entries"]) == 1
        assert trajectory["entries"][0]["value"] == 0.7

    def test_latest_baseline_is_newest(self):
        trajectory = load_trajectory("/nonexistent/none.json")
        record(trajectory, "pipeline", PIPELINE_PAYLOAD, "c1")
        record(
            trajectory, "pipeline",
            dict(PIPELINE_PAYLOAD, reduction_vs_arrival=0.65), "c2",
        )
        base = latest_baseline(trajectory, "pipeline", "reduction_vs_arrival")
        assert base["commit"] == "c2"
        excluded = latest_baseline(
            trajectory, "pipeline", "reduction_vs_arrival",
            exclude_commit="c2",
        )
        assert excluded["commit"] == "c1"

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "entries": []}))
        with pytest.raises(ValueError, match="not a bench trajectory"):
            load_trajectory(path)


class TestBenchDiff:
    def _trajectory(self, value=0.75, commit="base"):
        trajectory = load_trajectory("/nonexistent/none.json")
        record(
            trajectory, "pipeline",
            dict(PIPELINE_PAYLOAD, reduction_vs_arrival=value), commit,
        )
        return trajectory

    def test_twenty_percent_regression_flagged(self):
        # baseline 0.75 -> current 0.6 is a 20% drop against a 10% bar
        comparisons = bench_diff(
            self._trajectory(0.75), {"pipeline": PIPELINE_PAYLOAD},
            threshold=0.1,
        )
        assert len(comparisons) == 1
        assert comparisons[0].regressed
        assert comparisons[0].regression == pytest.approx(0.2)

    def test_within_threshold_passes(self):
        comparisons = bench_diff(
            self._trajectory(0.63), {"pipeline": PIPELINE_PAYLOAD},
            threshold=0.1,
        )
        assert not comparisons[0].regressed

    def test_improvement_never_regresses(self):
        comparisons = bench_diff(
            self._trajectory(0.5), {"pipeline": PIPELINE_PAYLOAD},
            threshold=0.1,
        )
        assert not comparisons[0].regressed
        assert comparisons[0].regression < 0

    def test_noisy_metric_gets_doubled_bar(self):
        trajectory = load_trajectory("/nonexistent/none.json")
        record(
            trajectory, "compile",
            dict(COMPILE_PAYLOAD, prep_speedup=6.0, total_speedup=2.5),
            "base",
        )
        comparisons = bench_diff(
            trajectory, {"compile": COMPILE_PAYLOAD}, threshold=0.1
        )
        by_name = {c.metric: c for c in comparisons}
        # 6.0 -> 5.0 is a 16.7% drop: over a 10% bar, under the 20%
        # noisy bar
        assert by_name["prep_speedup"].threshold == pytest.approx(0.2)
        assert not by_name["prep_speedup"].regressed

    def test_lower_is_better_direction(self):
        trajectory = load_trajectory("/nonexistent/none.json")
        record(
            trajectory, "health_overhead", {"overhead_fraction": 0.01},
            "base",
        )
        worse = bench_diff(
            trajectory, {"health_overhead": {"overhead_fraction": 0.02}},
            threshold=0.1,
        )
        assert worse[0].regressed  # overhead doubled

    def test_no_baseline_is_not_a_regression(self):
        comparisons = bench_diff(
            load_trajectory("/nonexistent/none.json"),
            {"pipeline": PIPELINE_PAYLOAD},
        )
        assert not comparisons[0].regressed
        assert "no baseline recorded yet" in comparisons[0].notes

    def test_exclude_commit_skips_self(self):
        trajectory = self._trajectory(0.75, commit="self")
        comparisons = bench_diff(
            trajectory, {"pipeline": PIPELINE_PAYLOAD},
            exclude_commit="self",
        )
        assert comparisons[0].baseline is None

    def test_format_renders(self):
        comparisons = [
            Comparison(
                bench="pipeline", metric="m", current=0.6, baseline=0.75,
                baseline_commit="c", higher_is_better=True, threshold=0.1,
                regression=0.2, regressed=True,
            )
        ]
        text = format_comparisons(comparisons)
        assert "REGRESSED" in text
        assert "-20.0%" in text


class TestRepoWrapper:
    def test_collect_results_skips_trajectory(self, tmp_path):
        from benchmarks.trajectory import collect_results

        (tmp_path / "BENCH_alpha.json").write_text('{"x_speedup": 2.0}')
        (tmp_path / "BENCH_trajectory.json").write_text('{"entries": []}')
        results = collect_results(tmp_path)
        assert set(results) == {"alpha"}

    def test_committed_seed_baseline_is_loadable(self):
        from benchmarks.trajectory import TRAJECTORY_PATH

        trajectory = load_trajectory(TRAJECTORY_PATH)
        benches = {e["bench"] for e in trajectory["entries"]}
        assert {"pipeline", "compile"} <= benches
