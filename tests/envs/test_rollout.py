"""Unit tests for episode rollouts and action decoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.envs.base import Environment
from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.envs.rollout import (
    decode_action,
    decode_action_batch,
    evaluate_policy,
    run_episode,
    run_lockstep,
)
from repro.envs.spaces import Box, Discrete


def zero_policy(obs):
    return np.zeros(4)


class _CountdownEnv(Environment):
    """Terminates naturally after ``terminate_at`` steps (or never)."""

    name = "countdown"
    max_episode_steps = 10

    def __init__(self, terminate_at=None, seed=None):
        super().__init__(seed)
        high = np.array([np.inf, np.inf])
        self.observation_space = Box(-high, high)
        self.action_space = Discrete(2)
        self.terminate_at = terminate_at
        self._count = 0

    def _reset(self):
        self._count = 0
        return np.zeros(2)

    def _step(self, action):
        self._count += 1
        done = self.terminate_at is not None and self._count >= self.terminate_at
        return np.array([float(self._count), 0.0]), 1.0, done, {}


class TestDecodeAction:
    def test_discrete_argmax(self):
        env = CartPole(seed=0)
        assert decode_action(env, np.array([0.1, 0.9])) == 1
        assert decode_action(env, np.array([0.9, 0.1])) == 0

    def test_discrete_ignores_extra_outputs(self):
        env = CartPole(seed=0)
        assert decode_action(env, np.array([0.0, 1.0, 99.0])) == 1

    def test_discrete_too_few_outputs(self):
        env = CartPole(seed=0)
        with pytest.raises(ValueError, match="needs 2"):
            decode_action(env, np.array([0.5]))

    def test_box_tanh_scaling(self):
        env = Pendulum(seed=0)
        action = decode_action(env, np.array([100.0]))
        assert action == pytest.approx(env.MAX_TORQUE)  # tanh saturates
        action = decode_action(env, np.array([0.0]))
        assert action == pytest.approx(0.0)

    @given(st.floats(-50, 50, allow_nan=False))
    def test_box_always_in_bounds(self, raw):
        env = Pendulum(seed=0)
        action = np.asarray(decode_action(env, np.array([raw])))
        assert env.action_space.contains(action)


class TestRunEpisode:
    def test_record_fields(self):
        env = CartPole(seed=0)
        rec = run_episode(env, zero_policy, seed=1)
        assert rec.steps >= 1
        assert rec.total_reward == pytest.approx(rec.steps)  # +1 per step
        assert rec.rewards == []  # not kept by default

    def test_keep_rewards(self):
        env = CartPole(seed=0)
        rec = run_episode(env, zero_policy, seed=1, keep_rewards=True)
        assert len(rec.rewards) == rec.steps
        assert sum(rec.rewards) == pytest.approx(rec.total_reward)

    def test_max_steps_override(self):
        env = Pendulum(seed=0)
        rec = run_episode(env, lambda o: np.zeros(1), seed=1, max_steps=7)
        assert rec.steps == 7
        assert rec.truncated

    def test_deterministic_with_seed(self):
        env_a, env_b = CartPole(), CartPole()
        rec_a = run_episode(env_a, zero_policy, seed=9)
        rec_b = run_episode(env_b, zero_policy, seed=9)
        assert rec_a.total_reward == rec_b.total_reward
        assert rec_a.steps == rec_b.steps


class TestTruncationReporting:
    def test_natural_termination_on_last_step_not_truncated(self):
        """Regression: an episode that terminates on exactly the final
        allowed step used to be misreported as truncated because the
        external step cap was OR-ed over the environment's own flag."""
        env = _CountdownEnv(terminate_at=_CountdownEnv.max_episode_steps)
        rec = run_episode(env, lambda o: np.array([1.0, 0.0]))
        assert rec.steps == _CountdownEnv.max_episode_steps
        assert not rec.truncated

    def test_time_limit_truncates(self):
        env = _CountdownEnv(terminate_at=None)  # never terminates naturally
        rec = run_episode(env, lambda o: np.array([1.0, 0.0]))
        assert rec.steps == _CountdownEnv.max_episode_steps
        assert rec.truncated

    def test_external_cap_truncates(self):
        env = _CountdownEnv(terminate_at=None)
        rec = run_episode(env, lambda o: np.array([1.0, 0.0]), max_steps=4)
        assert rec.steps == 4
        assert rec.truncated

    def test_early_natural_termination_not_truncated(self):
        env = _CountdownEnv(terminate_at=3)
        rec = run_episode(env, lambda o: np.array([1.0, 0.0]))
        assert rec.steps == 3
        assert not rec.truncated

    def test_lockstep_follows_same_rule(self):
        envs = [
            _CountdownEnv(terminate_at=_CountdownEnv.max_episode_steps),
            _CountdownEnv(terminate_at=None),
            _CountdownEnv(terminate_at=3),
        ]
        records = run_lockstep(
            envs, lambda obs: {m: np.array([1.0, 0.0]) for m in obs}
        )
        assert [r.steps for r in records] == [10, 10, 3]
        assert [r.truncated for r in records] == [False, True, False]


class TestDecodeActionBatch:
    def test_discrete_matches_rowwise(self):
        env = CartPole(seed=0)
        rng = np.random.default_rng(4)
        raw = rng.standard_normal((32, 2))
        raw[5] = [0.5, 0.5]  # tie: both must resolve to the first max
        batch = decode_action_batch(env, raw)
        assert batch == [decode_action(env, raw[i]) for i in range(32)]

    def test_box_matches_rowwise(self):
        env = Pendulum(seed=0)
        rng = np.random.default_rng(5)
        raw = rng.standard_normal((16, 1)) * 3.0
        batch = decode_action_batch(env, raw)
        for i in range(16):
            single = np.asarray(decode_action(env, raw[i]))
            assert np.asarray(batch[i]).tobytes() == single.tobytes()

    def test_too_few_outputs_rejected(self):
        env = CartPole(seed=0)
        with pytest.raises(ValueError, match="needs 2"):
            decode_action_batch(env, np.zeros((3, 1)))


class TestRunLockstep:
    def test_matches_individual_episodes(self):
        """A lock-step episode's record is bit-identical to running the
        same policy/seed alone through run_episode."""
        seeds = [11, 22, 33, 44]
        envs = [CartPole() for _ in seeds]
        records = run_lockstep(
            envs,
            lambda obs: {m: np.zeros(2) for m in obs},
            seeds=seeds,
            keep_rewards=True,
        )
        for seed, rec in zip(seeds, records):
            solo = run_episode(
                CartPole(), zero_policy, seed=seed, keep_rewards=True
            )
            assert rec.total_reward == solo.total_reward
            assert rec.steps == solo.steps
            assert rec.truncated == solo.truncated
            assert rec.rewards == solo.rewards

    def test_mixed_lengths_all_complete(self):
        envs = [_CountdownEnv(terminate_at=t) for t in (2, 7, 4)]
        records = run_lockstep(
            envs, lambda obs: {m: np.array([1.0, 0.0]) for m in obs}
        )
        assert [r.steps for r in records] == [2, 7, 4]
        assert [r.total_reward for r in records] == [2.0, 7.0, 4.0]

    def test_seed_count_mismatch(self):
        with pytest.raises(ValueError, match="one entry per env"):
            run_lockstep(
                [CartPole(), CartPole()],
                lambda obs: {m: np.zeros(2) for m in obs},
                seeds=[1],
            )

    def test_no_envs(self):
        assert run_lockstep([], lambda obs: {}) == []


class TestEvaluatePolicy:
    def test_averages_over_episodes(self):
        env = CartPole(seed=0)
        fitness = evaluate_policy(env, zero_policy, episodes=3, seeds=[1, 2, 3])
        per_episode = [
            run_episode(CartPole(), zero_policy, seed=s).total_reward
            for s in (1, 2, 3)
        ]
        assert fitness == pytest.approx(np.mean(per_episode))

    def test_seed_count_mismatch(self):
        env = CartPole(seed=0)
        with pytest.raises(ValueError, match="one entry per episode"):
            evaluate_policy(env, zero_policy, episodes=2, seeds=[1])
