"""Unit tests for episode rollouts and action decoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.envs.rollout import (
    decode_action,
    evaluate_policy,
    run_episode,
)


def zero_policy(obs):
    return np.zeros(4)


class TestDecodeAction:
    def test_discrete_argmax(self):
        env = CartPole(seed=0)
        assert decode_action(env, np.array([0.1, 0.9])) == 1
        assert decode_action(env, np.array([0.9, 0.1])) == 0

    def test_discrete_ignores_extra_outputs(self):
        env = CartPole(seed=0)
        assert decode_action(env, np.array([0.0, 1.0, 99.0])) == 1

    def test_discrete_too_few_outputs(self):
        env = CartPole(seed=0)
        with pytest.raises(ValueError, match="needs 2"):
            decode_action(env, np.array([0.5]))

    def test_box_tanh_scaling(self):
        env = Pendulum(seed=0)
        action = decode_action(env, np.array([100.0]))
        assert action == pytest.approx(env.MAX_TORQUE)  # tanh saturates
        action = decode_action(env, np.array([0.0]))
        assert action == pytest.approx(0.0)

    @given(st.floats(-50, 50, allow_nan=False))
    def test_box_always_in_bounds(self, raw):
        env = Pendulum(seed=0)
        action = np.asarray(decode_action(env, np.array([raw])))
        assert env.action_space.contains(action)


class TestRunEpisode:
    def test_record_fields(self):
        env = CartPole(seed=0)
        rec = run_episode(env, zero_policy, seed=1)
        assert rec.steps >= 1
        assert rec.total_reward == pytest.approx(rec.steps)  # +1 per step
        assert rec.rewards == []  # not kept by default

    def test_keep_rewards(self):
        env = CartPole(seed=0)
        rec = run_episode(env, zero_policy, seed=1, keep_rewards=True)
        assert len(rec.rewards) == rec.steps
        assert sum(rec.rewards) == pytest.approx(rec.total_reward)

    def test_max_steps_override(self):
        env = Pendulum(seed=0)
        rec = run_episode(env, lambda o: np.zeros(1), seed=1, max_steps=7)
        assert rec.steps == 7
        assert rec.truncated

    def test_deterministic_with_seed(self):
        env_a, env_b = CartPole(), CartPole()
        rec_a = run_episode(env_a, zero_policy, seed=9)
        rec_b = run_episode(env_b, zero_policy, seed=9)
        assert rec_a.total_reward == rec_b.total_reward
        assert rec_a.steps == rec_b.steps


class TestEvaluatePolicy:
    def test_averages_over_episodes(self):
        env = CartPole(seed=0)
        fitness = evaluate_policy(env, zero_policy, episodes=3, seeds=[1, 2, 3])
        per_episode = [
            run_episode(CartPole(), zero_policy, seed=s).total_reward
            for s in (1, 2, 3)
        ]
        assert fitness == pytest.approx(np.mean(per_episode))

    def test_seed_count_mismatch(self):
        env = CartPole(seed=0)
        with pytest.raises(ValueError, match="one entry per episode"):
            evaluate_policy(env, zero_policy, episodes=2, seeds=[1])
