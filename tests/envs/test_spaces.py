"""Unit tests for observation/action spaces."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.envs.spaces import Box, Discrete


class TestBox:
    def test_shape_from_bounds(self):
        box = Box(np.array([-1.0, 0.0]), np.array([1.0, 2.0]))
        assert box.shape == (2,)
        assert box.flat_dim == 2

    def test_broadcast_shape(self):
        box = Box(-1.0, 1.0, shape=(4,))
        assert box.shape == (4,)
        assert np.all(box.low == -1.0)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), np.ones(3))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Box(np.array([1.0]), np.array([-1.0]))

    def test_contains_inside_and_outside(self):
        box = Box(np.array([-1.0]), np.array([1.0]))
        assert box.contains(np.array([0.5]))
        assert not box.contains(np.array([1.5]))
        assert not box.contains(np.array([0.5, 0.5]))  # wrong shape

    def test_clip(self):
        box = Box(np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        clipped = box.clip(np.array([5.0, -5.0]))
        assert np.array_equal(clipped, np.array([1.0, -1.0]))

    def test_sample_within_bounds(self):
        box = Box(np.array([-2.0, 0.0]), np.array([2.0, 1.0]))
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert box.contains(box.sample(rng))

    def test_sample_unbounded_does_not_crash(self):
        box = Box(np.array([-np.inf]), np.array([np.inf]))
        rng = np.random.default_rng(0)
        sample = box.sample(rng)
        assert np.isfinite(sample).all()

    def test_equality(self):
        a = Box(np.array([-1.0]), np.array([1.0]))
        b = Box(np.array([-1.0]), np.array([1.0]))
        c = Box(np.array([-2.0]), np.array([1.0]))
        assert a == b
        assert a != c

    @given(st.floats(-100, 0), st.floats(0.001, 100))
    def test_clip_always_contained(self, lo, hi):
        box = Box(np.array([lo]), np.array([hi]))
        assert box.contains(box.clip(np.array([1e9])))
        assert box.contains(box.clip(np.array([-1e9])))


class TestDiscrete:
    def test_basic(self):
        d = Discrete(4)
        assert d.n == 4
        assert d.flat_dim == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_contains(self):
        d = Discrete(3)
        assert d.contains(0)
        assert d.contains(2)
        assert not d.contains(3)
        assert not d.contains(-1)
        assert not d.contains("x")

    def test_sample_range(self):
        d = Discrete(5)
        rng = np.random.default_rng(1)
        samples = {d.sample(rng) for _ in range(200)}
        assert samples == {0, 1, 2, 3, 4}

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)
        assert Discrete(3) != Box(np.array([0.0]), np.array([1.0]))
