"""Unit tests for the Environment base class plumbing."""

import numpy as np
import pytest

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete


class _Counter(Environment):
    """Minimal environment: obs counts steps, never self-terminates."""

    name = "counter"
    max_episode_steps = 4
    reward_threshold = 10.0

    def __init__(self, seed=None):
        super().__init__(seed)
        self.observation_space = Box(np.array([0.0]), np.array([100.0]))
        self.action_space = Discrete(2)
        self._count = 0

    def _reset(self):
        self._count = 0
        return np.array([0.0])

    def _step(self, action):
        self._count += 1
        return np.array([float(self._count)]), 1.0, False, {}


class TestTimeLimit:
    def test_truncation_at_limit(self):
        env = _Counter()
        env.reset()
        for i in range(3):
            _, _, done, info = env.step(0)
            assert not done
        _, _, done, info = env.step(0)
        assert done and info["truncated"]

    def test_elapsed_steps_counter(self):
        env = _Counter()
        env.reset()
        env.step(0)
        env.step(0)
        assert env.elapsed_steps == 2

    def test_reset_clears_counter(self):
        env = _Counter()
        env.reset()
        env.step(0)
        env.reset()
        assert env.elapsed_steps == 0


class TestSeeding:
    def test_reset_seed_reseeds_rng(self):
        env = _Counter()
        env.reset(seed=5)
        a = env.rng.random()
        env.reset(seed=5)
        b = env.rng.random()
        assert a == b

    def test_reset_without_seed_continues_stream(self):
        env = _Counter(seed=1)
        env.reset()
        a = env.rng.random()
        env.reset()
        b = env.rng.random()
        assert a != b


class TestInterfaceSizing:
    def test_discrete_outputs_is_action_count(self):
        env = _Counter()
        assert env.num_outputs == 2
        assert env.num_inputs == 1

    def test_box_outputs_is_flat_dim(self):
        env = _Counter()
        env.action_space = Box(np.full(3, -1.0), np.full(3, 1.0))
        assert env.num_outputs == 3

    def test_repr_mentions_spaces(self):
        assert "Discrete(2)" in repr(_Counter())


class TestGuards:
    def test_double_done_guard(self):
        env = _Counter()
        env.reset()
        for _ in range(4):
            env.step(0)
        with pytest.raises(RuntimeError, match="terminated"):
            env.step(0)
