"""Unit tests for the four classic-control environments."""

import math

import numpy as np
import pytest

from repro.envs.acrobot import Acrobot
from repro.envs.cartpole import CartPole
from repro.envs.mountain_car import MountainCar, MountainCarContinuous
from repro.envs.pendulum import Pendulum

ALL_CLASSIC = [CartPole, Acrobot, MountainCar, MountainCarContinuous, Pendulum]


@pytest.mark.parametrize("env_cls", ALL_CLASSIC)
class TestCommonContract:
    def test_reset_returns_observation_in_space(self, env_cls):
        env = env_cls(seed=0)
        obs = env.reset()
        assert obs.shape == env.observation_space.shape
        assert np.isfinite(obs).all()

    def test_deterministic_under_seed(self, env_cls):
        env_a, env_b = env_cls(), env_cls()
        obs_a = env_a.reset(seed=123)
        obs_b = env_b.reset(seed=123)
        assert np.array_equal(obs_a, obs_b)
        rng = np.random.default_rng(0)
        for _ in range(20):
            action = env_a.action_space.sample(rng)
            ra = env_a.step(action)
            rb = env_b.step(action)
            assert np.array_equal(ra[0], rb[0])
            assert ra[1] == rb[1] and ra[2] == rb[2]
            if ra[2]:
                break

    def test_step_before_reset_raises(self, env_cls):
        env = env_cls(seed=0)
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            env.step(env.action_space.sample(rng))

    def test_step_after_done_raises(self, env_cls):
        env = env_cls(seed=0)
        env.reset(seed=0)
        rng = np.random.default_rng(0)
        done = False
        for _ in range(env.max_episode_steps + 1):
            _, _, done, _ = env.step(env.action_space.sample(rng))
            if done:
                break
        assert done
        with pytest.raises(RuntimeError):
            env.step(env.action_space.sample(rng))

    def test_time_limit_truncation(self, env_cls):
        env = env_cls(seed=0)
        env.max_episode_steps = 5
        env.reset(seed=4)
        # a "do nothing much" action rarely terminates in 5 steps for
        # these tasks; accept either outcome but check the flag shape
        for _ in range(5):
            if env_cls in (CartPole,):
                action = 0
            else:
                action = env.action_space.sample(np.random.default_rng(0))
            obs, reward, done, info = env.step(action)
            if done:
                assert isinstance(info["truncated"], bool)
                break
        assert done


class TestCartPole:
    def test_pole_falls_without_control(self):
        env = CartPole(seed=0)
        env.reset(seed=2)
        steps = 0
        done = False
        while not done:
            _, _, done, _ = env.step(0)  # constant push left
            steps += 1
        assert steps < env.max_episode_steps  # it must fall

    def test_reward_is_one_per_step(self):
        env = CartPole(seed=0)
        env.reset(seed=0)
        _, reward, _, _ = env.step(1)
        assert reward == 1.0

    def test_invalid_action_rejected(self):
        env = CartPole(seed=0)
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(7)

    def test_termination_on_angle(self):
        env = CartPole(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 0.0, env.THETA_THRESHOLD * 1.5, 0.0])
        _, _, done, _ = env.step(0)
        assert done


class TestAcrobot:
    def test_reward_is_minus_one_until_goal(self):
        env = Acrobot(seed=0)
        env.reset(seed=0)
        _, reward, done, _ = env.step(1)
        assert reward == -1.0 and not done

    def test_observation_is_trig_encoded(self):
        env = Acrobot(seed=0)
        obs = env.reset(seed=0)
        # cos^2 + sin^2 == 1 for both links
        assert math.isclose(obs[0] ** 2 + obs[1] ** 2, 1.0, rel_tol=1e-9)
        assert math.isclose(obs[2] ** 2 + obs[3] ** 2, 1.0, rel_tol=1e-9)

    def test_terminal_reward_zero(self):
        env = Acrobot(seed=0)
        env.reset(seed=0)
        env._state = np.array([math.pi, 0.0, 0.0, 0.0])  # swung up
        _, reward, done, _ = env.step(1)
        # from the upright region the terminal check fires
        assert done and reward == 0.0

    def test_velocity_clipping(self):
        env = Acrobot(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 0.0, 100.0, 100.0])
        obs, _, _, _ = env.step(2)
        assert abs(obs[4]) <= env.MAX_VEL_1
        assert abs(obs[5]) <= env.MAX_VEL_2


class TestMountainCar:
    def test_cannot_solve_by_coasting(self):
        env = MountainCar(seed=0)
        env.reset(seed=0)
        done = False
        while not done:
            _, _, done, info = env.step(1)  # coast
        assert info["truncated"]  # times out rather than reaching the flag

    def test_goal_detection(self):
        env = MountainCar(seed=0)
        env.reset(seed=0)
        env._state = np.array([env.GOAL_POSITION - 0.005, env.MAX_SPEED])
        _, _, done, _ = env.step(2)
        assert done

    def test_position_clipped_at_left_wall(self):
        env = MountainCar(seed=0)
        env.reset(seed=0)
        env._state = np.array([env.MIN_POSITION, -env.MAX_SPEED])
        obs, _, _, _ = env.step(0)
        assert obs[0] >= env.MIN_POSITION
        assert obs[1] >= 0.0  # velocity zeroed at the wall

    def test_continuous_variant_rewards(self):
        env = MountainCarContinuous(seed=0)
        env.reset(seed=0)
        _, reward, done, _ = env.step(np.array([1.0]))
        assert not done
        assert reward == pytest.approx(-0.1)  # pure action cost


class TestPendulum:
    def test_never_terminates_early(self):
        env = Pendulum(seed=0)
        env.reset(seed=0)
        for _ in range(env.max_episode_steps - 1):
            _, _, done, _ = env.step(np.array([0.0]))
            assert not done
        _, _, done, info = env.step(np.array([0.0]))
        assert done and info["truncated"]

    def test_reward_nonpositive_and_bounded(self):
        env = Pendulum(seed=0)
        env.reset(seed=0)
        worst = -(math.pi**2 + 0.1 * env.MAX_SPEED**2 + 0.001 * env.MAX_TORQUE**2)
        for _ in range(50):
            _, reward, _, _ = env.step(np.array([2.0]))
            assert worst - 1e-9 <= reward <= 0.0

    def test_torque_clipped(self):
        env = Pendulum(seed=0)
        env.reset(seed=0)
        # giant torque is clipped; cost uses the clipped value
        _, r_big, _, _ = env.step(np.array([100.0]))
        env.reset(seed=0)
        _, r_max, _, _ = env.step(np.array([env.MAX_TORQUE]))
        assert r_big == pytest.approx(r_max)

    def test_upright_equilibrium_low_cost(self):
        env = Pendulum(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 0.0])  # upright, still
        _, reward, _, _ = env.step(np.array([0.0]))
        assert reward == pytest.approx(0.0, abs=1e-6)
