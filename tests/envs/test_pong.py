"""Unit tests for the Pong (Env7, Atari-class) environment."""

import numpy as np
import pytest

from repro.envs.pong import Pong
from repro.envs.rollout import run_episode


def _tracking_policy(obs: np.ndarray) -> np.ndarray:
    """Move toward the ball's y — the obvious decent strategy."""
    ball_y, own_y = obs[1], obs[4]
    if ball_y > own_y:
        return np.array([0.0, 1.0, 0.0])  # up
    return np.array([0.0, 0.0, 1.0])  # down


class TestInterface:
    def test_observation_and_actions(self):
        env = Pong(seed=0)
        obs = env.reset()
        assert obs.shape == (6,)
        assert env.action_space.n == 3
        assert env.num_outputs == 3

    def test_observation_normalized(self):
        env = Pong(seed=0)
        obs = env.reset(seed=1)
        for _ in range(100):
            obs, _, done, _ = env.step(0)
            assert np.all(np.abs(obs) <= 1.5)
            if done:
                break

    def test_determinism(self):
        a, b = Pong(), Pong()
        oa, ob = a.reset(seed=3), b.reset(seed=3)
        assert np.array_equal(oa, ob)
        for _ in range(50):
            ra, rb = a.step(1), b.step(1)
            assert np.array_equal(ra[0], rb[0]) and ra[1] == rb[1]
            if ra[2]:
                break

    def test_invalid_action(self):
        env = Pong(seed=0)
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(5)


class TestGameplay:
    def test_idle_paddle_loses(self):
        env = Pong(seed=0)
        rec = run_episode(env, lambda o: np.array([1.0, 0.0, 0.0]), seed=4)
        assert rec.total_reward <= -3  # opponent wins nearly every rally

    def test_tracking_policy_wins(self):
        rewards = [
            run_episode(Pong(), _tracking_policy, seed=s).total_reward
            for s in range(4)
        ]
        assert np.mean(rewards) > 1.0  # own paddle is faster: tracker wins

    def test_match_ends_at_points_limit(self):
        env = Pong(seed=0)
        env.reset(seed=5)
        done = False
        info = {}
        while not done:
            _, _, done, info = env.step(0)
        assert (
            info["own_score"] >= env.POINTS_TO_WIN
            or info["opp_score"] >= env.POINTS_TO_WIN
            or info["truncated"]
        )

    def test_rewards_are_rally_outcomes(self):
        env = Pong(seed=0)
        env.reset(seed=6)
        seen = set()
        done = False
        while not done:
            _, reward, done, _ = env.step(0)
            seen.add(reward)
        assert seen <= {-1.0, 0.0, 1.0}
        assert -1.0 in seen  # the idle paddle lost rallies

    def test_paddle_clamped_to_field(self):
        env = Pong(seed=0)
        env.reset(seed=7)
        for _ in range(200):
            _, _, done, _ = env.step(env.UP)
            if done:
                break
        assert env._own_y <= env.FIELD_H - env.PADDLE_HALF + 1e-9

    def test_wall_bounce_preserves_ball(self):
        env = Pong(seed=0)
        env.reset(seed=8)
        env._ball = np.array([0.5, 0.001])
        env._ball_v = np.array([0.01, -0.02])
        env.step(0)
        assert env._ball_v[1] > 0  # bounced off the bottom wall
