"""Unit tests for the Box2D-substitute environments (lander, walker)."""

import numpy as np
import pytest

from repro.envs.bipedal_walker import BipedalWalker
from repro.envs.lunar_lander import LunarLander


class TestLunarLander:
    def test_interface_matches_gym(self):
        env = LunarLander(seed=0)
        obs = env.reset()
        assert obs.shape == (8,)  # x, y, vx, vy, angle, omega, legL, legR
        assert env.action_space.n == 4
        assert env.num_outputs == 4  # the paper's PE count for Env5

    def test_determinism(self):
        a, b = LunarLander(), LunarLander()
        oa, ob = a.reset(seed=7), b.reset(seed=7)
        assert np.array_equal(oa, ob)
        for _ in range(30):
            ra, rb = a.step(2), b.step(2)
            assert np.array_equal(ra[0], rb[0]) and ra[1] == rb[1]
            if ra[2]:
                break

    def test_free_fall_crashes(self):
        env = LunarLander(seed=0)
        env.reset(seed=3)
        total, done = 0.0, False
        while not done:
            _, reward, done, _ = env.step(env.NOOP)
            total += reward
        assert total < 0  # crashing is heavily penalized

    def test_main_engine_thrusts_up(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
        env.step(env.MAIN_ENGINE)
        assert env._state[3] > env.GRAVITY * env.DT  # vy above free fall

    def test_side_thruster_applies_torque(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
        env.step(env.LEFT_THRUSTER)
        omega_left = env._state[5]
        env.reset(seed=0)
        env._state = np.array([0.0, 1.0, 0.0, 0.0, 0.0, 0.0])
        env.step(env.RIGHT_THRUSTER)
        omega_right = env._state[5]
        assert omega_left > 0 > omega_right

    def test_safe_landing_bonus(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        # place the lander just above the pad, slow and level
        env._state = np.array([0.0, 0.01, 0.0, -0.05, 0.0, 0.0])
        env._prev_shaping = None
        total, done = 0.0, False
        while not done:
            _, reward, done, _ = env.step(env.NOOP)
            total += reward
        assert total > 50  # +100 landing bonus dominates

    def test_crash_landing_penalty(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        env._state = np.array([0.0, 0.002, 0.0, -3.0, 0.0, 0.0])  # too fast
        env._prev_shaping = None
        _, reward, done, _ = env.step(env.NOOP)
        assert done and reward < -50

    def test_out_of_bounds_terminates(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        env._state = np.array([env.FIELD_HALF_WIDTH + 1.0, 1.0, 0, 0, 0, 0])
        _, reward, done, _ = env.step(env.NOOP)
        assert done and reward < 0

    def test_invalid_action_rejected(self):
        env = LunarLander(seed=0)
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(9)


class TestBipedalWalker:
    def test_interface_matches_gym(self):
        env = BipedalWalker(seed=0)
        obs = env.reset()
        assert obs.shape == (24,)  # hull(4) + legs(10) + lidar(10)
        assert env.action_space.flat_dim == 4
        assert env.num_outputs == 4  # the paper's PE count for Env4

    def test_determinism(self):
        a, b = BipedalWalker(), BipedalWalker()
        oa, ob = a.reset(seed=11), b.reset(seed=11)
        assert np.array_equal(oa, ob)
        act = np.array([0.5, -0.5, 0.5, -0.5])
        for _ in range(20):
            ra, rb = a.step(act), b.step(act)
            assert np.array_equal(ra[0], rb[0]) and ra[1] == rb[1]
            if ra[2]:
                break

    def test_lidar_normalized(self):
        env = BipedalWalker(seed=0)
        obs = env.reset(seed=0)
        lidar = obs[14:]
        assert np.all(lidar >= 0.0) and np.all(lidar <= 1.0)

    def test_wrong_action_size_rejected(self):
        env = BipedalWalker(seed=0)
        env.reset(seed=0)
        with pytest.raises(ValueError):
            env.step(np.array([1.0, 0.0]))

    def test_falling_is_penalized(self):
        env = BipedalWalker(seed=0)
        env.reset(seed=0)
        env._hull_pitch = env.PITCH_LIMIT * 1.5
        _, reward, done, _ = env.step(np.zeros(4))
        assert done and reward < -50

    def test_joint_limits_enforced(self):
        env = BipedalWalker(seed=0)
        env.reset(seed=0)
        for _ in range(200):
            _, _, done, _ = env.step(np.ones(4))  # max torque everywhere
            if done:
                break
        hips = env._joints[[0, 2]]
        knees = env._joints[[1, 3]]
        assert np.all(hips >= env.HIP_LIMIT[0] - 1e-9)
        assert np.all(hips <= env.HIP_LIMIT[1] + 1e-9)
        assert np.all(knees >= env.KNEE_LIMIT[0] - 1e-9)
        assert np.all(knees <= env.KNEE_LIMIT[1] + 1e-9)

    def test_torque_costs_reduce_reward(self):
        env = BipedalWalker(seed=0)
        env.reset(seed=0)
        env._hull_vx = 0.0
        _, r_idle, _, _ = env.step(np.zeros(4))
        env.reset(seed=0)
        env._hull_vx = 0.0
        _, r_max, _, _ = env.step(np.ones(4))
        # same progress (none), so the torque cost must separate them
        assert r_max < r_idle

    def test_alternating_gait_moves_forward(self):
        env = BipedalWalker(seed=0)
        env.reset(seed=0)
        x0 = env._hull_x
        for t in range(300):
            phase = 1.0 if (t // 25) % 2 == 0 else -1.0
            action = np.array([phase, -0.3, -phase, -0.3])
            _, _, done, info = env.step(action)
            if done:
                break
        assert info["x"] != x0  # the reduced-order model responds to gait
