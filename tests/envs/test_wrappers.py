"""Unit tests for environment wrappers."""

import numpy as np
import pytest

from repro.envs.cartpole import CartPole
from repro.envs.pendulum import Pendulum
from repro.envs.rollout import run_episode
from repro.envs.wrappers import (
    ActionRepeat,
    ObservationNoise,
    TimeLimitOverride,
    Wrapper,
)


class TestWrapperDelegation:
    def test_interface_passthrough(self):
        env = CartPole(seed=0)
        wrapped = Wrapper(env)
        assert wrapped.num_inputs == env.num_inputs
        assert wrapped.num_outputs == env.num_outputs
        assert wrapped.name == "cartpole"
        assert wrapped.reward_threshold == env.reward_threshold
        assert wrapped.action_space is env.action_space

    def test_step_and_reset_delegate(self):
        env = CartPole(seed=0)
        wrapped = Wrapper(env)
        obs = wrapped.reset(seed=3)
        assert obs.shape == (4,)
        _, reward, _, _ = wrapped.step(0)
        assert reward == 1.0
        assert wrapped.elapsed_steps == 1

    def test_rollout_helpers_accept_wrappers(self):
        env = ObservationNoise(CartPole(seed=0), std=0.01)
        rec = run_episode(env, lambda o: np.zeros(2), seed=1)
        assert rec.steps >= 1


class TestObservationNoise:
    def test_invalid_std(self):
        with pytest.raises(ValueError):
            ObservationNoise(CartPole(), std=-1)

    def test_zero_std_is_identity(self):
        base = CartPole()
        noisy = ObservationNoise(CartPole(), std=0.0)
        a = base.reset(seed=5)
        b = noisy.reset(seed=5)
        assert np.array_equal(a, b)

    def test_noise_changes_observations(self):
        base = CartPole()
        noisy = ObservationNoise(CartPole(), std=0.5)
        a = base.reset(seed=5)
        b = noisy.reset(seed=5)
        assert not np.array_equal(a, b)

    def test_noise_is_reproducible_under_seed(self):
        a = ObservationNoise(CartPole(), std=0.1)
        b = ObservationNoise(CartPole(), std=0.1)
        assert np.array_equal(a.reset(seed=2), b.reset(seed=2))
        ra, rb = a.step(0), b.step(0)
        assert np.array_equal(ra[0], rb[0])

    def test_rewards_untouched(self):
        noisy = ObservationNoise(CartPole(), std=1.0)
        noisy.reset(seed=0)
        _, reward, _, _ = noisy.step(0)
        assert reward == 1.0


class TestActionRepeat:
    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            ActionRepeat(CartPole(), repeats=0)

    def test_rewards_summed(self):
        env = ActionRepeat(Pendulum(seed=0), repeats=3)
        env.reset(seed=1)
        # a pendulum step reward is strictly negative; three summed
        # steps must be more negative than one
        single = Pendulum(seed=0)
        single.reset(seed=1)
        _, r1, _, _ = single.step(np.array([0.0]))
        _, r3, _, _ = env.step(np.array([0.0]))
        assert r3 < r1 < 0

    def test_inner_steps_advance(self):
        env = ActionRepeat(CartPole(seed=0), repeats=4)
        env.reset(seed=2)
        env.step(0)
        assert env.elapsed_steps == 4  # inner env stepped 4 times

    def test_early_termination_stops_repeat(self):
        env = ActionRepeat(CartPole(seed=0), repeats=1000)
        env.reset(seed=2)
        _, _, done, _ = env.step(0)  # constant push ends the episode
        assert done
        assert env.elapsed_steps < 1000


class TestTimeLimitOverride:
    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            TimeLimitOverride(CartPole(), max_episode_steps=0)

    def test_shortened_limit_truncates(self):
        env = TimeLimitOverride(Pendulum(seed=0), max_episode_steps=5)
        env.reset(seed=1)
        done = False
        steps = 0
        while not done:
            _, _, done, info = env.step(np.array([0.0]))
            steps += 1
        assert steps == 5
        assert info["truncated"]

    def test_limit_property_reflects_override(self):
        env = TimeLimitOverride(Pendulum(), max_episode_steps=7)
        assert env.max_episode_steps == 7

    def test_reset_restarts_counter(self):
        env = TimeLimitOverride(Pendulum(seed=0), max_episode_steps=3)
        env.reset(seed=1)
        for _ in range(3):
            env.step(np.array([0.0]))
        env.reset(seed=2)
        _, _, done, _ = env.step(np.array([0.0]))
        assert not done


class TestComposition:
    def test_stacked_wrappers(self):
        env = TimeLimitOverride(
            ObservationNoise(ActionRepeat(Pendulum(seed=0), repeats=2), 0.01),
            max_episode_steps=4,
        )
        obs = env.reset(seed=9)
        assert obs.shape == (3,)
        done = False
        decisions = 0
        while not done:
            _, _, done, _ = env.step(np.array([0.0]))
            decisions += 1
        assert decisions == 4  # outer limit counts decisions, not frames
