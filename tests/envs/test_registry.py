"""Unit tests for the environment registry."""

import pytest

from repro.envs.registry import ENV_SUITE, make, registered_names, spec


def test_suite_matches_paper_order():
    # footnote 4: Env1 cartpole .. Env6 pendulum
    expected = [
        ("cartpole", "Env1"),
        ("acrobot", "Env2"),
        ("mountain_car", "Env3"),
        ("bipedal_walker", "Env4"),
        ("lunar_lander", "Env5"),
        ("pendulum", "Env6"),
        ("pong", "Env7"),
    ]
    assert [(s.name, s.paper_id) for s in ENV_SUITE] == expected


def test_make_returns_fresh_instances():
    a = make("cartpole", seed=0)
    b = make("cartpole", seed=0)
    assert a is not b


def test_make_unknown_env():
    with pytest.raises(KeyError, match="unknown environment"):
        make("walker3d")


def test_spec_unknown_env():
    with pytest.raises(KeyError, match="unknown environment"):
        spec("doom")


def test_required_fitness_matches_reward_threshold():
    for env_spec in ENV_SUITE:
        env = env_spec.make()
        assert env_spec.required_fitness == env.reward_threshold


def test_registered_names_includes_extras():
    names = registered_names()
    assert "mountain_car_continuous" in names
    assert len(names) == 8


def test_spec_make_seeds():
    env = spec("pendulum").make(seed=5)
    obs_a = env.reset()
    env2 = spec("pendulum").make(seed=5)
    obs_b = env2.reset()
    assert (obs_a == obs_b).all()
