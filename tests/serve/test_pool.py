"""BackendPool leasing, reuse, reset, and bit-identity guarantees."""

import pytest

from repro.core.platform import E3, effective_neat_config
from repro.neat.config import NEATConfig
from repro.serve.pool import BackendPool, PoolExhausted

CONFIG = NEATConfig(population_size=8)


def run_fitness_history(backend_or_name, seed: int) -> list[float]:
    result = E3(
        "cartpole", backend=backend_or_name, neat_config=CONFIG, seed=seed
    ).run(max_generations=3)
    return [stats.best_fitness for stats in result.history]


class TestLeasing:
    def test_fresh_then_reused(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu-fast", config)
        first_backend = lease.backend
        lease.release()
        again = pool.lease("cartpole", "cpu-fast", config)
        assert again.backend is first_backend
        assert pool.stats()["created"] == 1
        assert pool.stats()["reused"] == 1

    def test_key_mismatch_builds_fresh(self):
        pool = BackendPool(max_leases=4)
        config = effective_neat_config("cartpole", CONFIG)
        a = pool.lease("cartpole", "cpu-fast", config)
        a.release()
        b = pool.lease("cartpole", "cpu", config)  # different backend
        assert b.backend is not a.backend
        other = effective_neat_config(
            "cartpole", NEATConfig(population_size=12)
        )
        c = pool.lease("cartpole", "cpu-fast", other)  # different config
        assert c.backend is not a.backend

    def test_capacity_raises_instead_of_blocking(self):
        pool = BackendPool(max_leases=1)
        config = effective_neat_config("cartpole", CONFIG)
        held = pool.lease("cartpole", "cpu", config)
        with pytest.raises(PoolExhausted):
            pool.lease("cartpole", "cpu", config)
        held.release()
        pool.lease("cartpole", "cpu", config)  # slot is free again

    def test_discard_drops_backend(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu-fast", config)
        broken = lease.backend
        lease.release(discard=True)
        fresh = pool.lease("cartpole", "cpu-fast", config)
        assert fresh.backend is not broken
        assert pool.stats()["discarded"] == 1

    def test_release_is_idempotent(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu", config)
        lease.release()
        lease.release()
        assert pool.stats()["active"] == 0
        assert pool.stats()["idle"] == 1


class TestResetRunState:
    def test_reused_backend_starts_clean(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu-fast", config, base_seed=0)
        run_fitness_history(lease.backend, seed=0)
        assert lease.backend.records  # first run accumulated state
        assert lease.backend.cache_info()["hits"] > 0
        lease.release()
        again = pool.lease("cartpole", "cpu-fast", config, base_seed=1)
        backend = again.backend
        assert backend.records == []
        assert backend._generation == 0
        assert backend.cache_info()["hits"] == 0
        assert backend.cache_info()["misses"] == 0
        assert backend.base_seed == 1
        # structural cache entries deliberately survive the reset
        assert backend.cache_info()["size"] > 0

    def test_reused_backend_is_bit_identical_to_fresh(self):
        # the acceptance contract: a leased backend that already ran a
        # different job produces the same bits a fresh backend would
        fresh = run_fitness_history("cpu-fast", seed=3)
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu-fast", config, base_seed=11)
        run_fitness_history(lease.backend, seed=11)  # pollute with job A
        lease.release()
        again = pool.lease("cartpole", "cpu-fast", config, base_seed=3)
        reused = run_fitness_history(again.backend, seed=3)
        assert reused == fresh

    def test_compiled_backend_reset(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        lease = pool.lease("cartpole", "cpu-compiled", config, base_seed=0)
        run_fitness_history(lease.backend, seed=0)
        assert lease.backend.compile_cache_info()["misses"] > 0
        lease.release()
        again = pool.lease("cartpole", "cpu-compiled", config, base_seed=0)
        info = again.backend.compile_cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["size"] > 0  # compiled structures stay warm

    def test_close_closes_idle_backends(self):
        pool = BackendPool(max_leases=2)
        config = effective_neat_config("cartpole", CONFIG)
        pool.lease("cartpole", "cpu", config).release()
        pool.close()
        assert pool.stats()["idle"] == 0
