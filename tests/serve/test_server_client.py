"""Daemon front end: JSON-lines socket server + thin sync client.

The server runs on a background thread with its own event loop (as the
``repro serve`` process would); the client talks to it over a real
Unix socket from the test thread.
"""

import threading

import asyncio

import pytest

from repro.serve import (
    EvolutionService,
    ServeClient,
    ServeError,
    SocketServer,
)


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on a tmp Unix socket; yields (client, data_dir)."""
    socket_path = tmp_path / "repro.sock"
    data_dir = tmp_path / "data"
    started = threading.Event()

    def run() -> None:
        async def serve() -> None:
            service = EvolutionService(max_concurrent=2, data_dir=data_dir)
            server = SocketServer(service, socket_path)
            await server.start()
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(serve())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=10), "daemon failed to start"
    client = ServeClient(socket_path)
    yield client, data_dir
    try:
        client.shutdown()
    except (ServeError, OSError):
        pass  # repro: noqa[RES001] -- test already shut the daemon down
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon did not shut down cleanly"


SMALL = {"env": "cartpole", "population_size": 8, "generations": 3,
         "backend": "cpu-fast"}


class TestProtocol:
    def test_ping(self, daemon):
        client, _ = daemon
        assert client.ping()

    def test_submit_wait_status(self, daemon):
        client, _ = daemon
        job = client.submit({**SMALL, "seed": 3}, tenant="alice")
        final = client.wait(job)
        assert final["state"] == "completed"
        assert final["tenant"] == "alice"
        assert client.status(job)["state"] == "completed"
        jobs = client.jobs()
        assert [j["id"] for j in jobs] == [job]

    def test_stream_ends_with_done(self, daemon):
        client, _ = daemon
        job = client.submit({**SMALL, "seed": 1})
        events = list(client.stream(job))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "generation" in kinds

    def test_cancel_round_trip(self, daemon):
        client, _ = daemon
        # saturate both slots, then cancel a queued job
        for i in range(2):
            client.submit({**SMALL, "generations": 5, "seed": i})
        victim = client.submit({**SMALL, "seed": 9})
        status = client.cancel(victim)
        assert status["state"] in ("cancelled", "cancelling")
        assert client.wait(victim)["state"] == "cancelled"

    def test_per_job_trace_artifact_validates(self, daemon):
        from repro.telemetry import validate_trace_jsonl

        client, data_dir = daemon
        job = client.submit({**SMALL, "seed": 2, "trace": True})
        final = client.wait(job)
        assert final["trace_path"] is not None
        problems = validate_trace_jsonl(final["trace_path"])
        assert problems == []

    def test_errors_come_back_as_serve_error(self, daemon):
        client, _ = daemon
        with pytest.raises(ServeError, match="unknown job"):
            client.status("job-99999")
        with pytest.raises(ServeError, match="unknown backend"):
            client.submit({**SMALL, "backend": "tpu"})

    def test_stats(self, daemon):
        client, _ = daemon
        job = client.submit({**SMALL, "seed": 0})
        client.wait(job)
        stats = client.stats()
        assert stats["jobs"] == {"completed": 1}
        assert stats["pool"]["max_leases"] == 4
