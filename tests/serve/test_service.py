"""EvolutionService: submit/status/stream/cancel/resume lifecycle."""

import asyncio

import pytest

from repro.neat.checkpoint import load_checkpoint
from repro.serve import (
    AdmissionError,
    EvolutionService,
    JobSpec,
    QuotaConfig,
)

SMALL = dict(env="cartpole", population_size=8, generations=3,
             backend="cpu-fast")


def run_async(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_submit_runs_to_completion(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=2, data_dir=tmp_path)
            await service.start()
            job_id = await service.submit(JobSpec(**SMALL, seed=5))
            status = await service.wait(job_id)
            await service.shutdown()
            return status

        status = run_async(scenario())
        assert status["state"] == "completed"
        assert status["generations_done"] >= 1
        assert status["best_fitness"] is not None
        assert status["latency_seconds"] > 0
        assert status["checkpoint_path"] is not None

    def test_deterministic_job_ids(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            ids = [
                await service.submit(JobSpec(**SMALL, seed=i))
                for i in range(3)
            ]
            for job_id in ids:
                await service.wait(job_id)
            await service.shutdown()
            return ids

        assert run_async(scenario()) == [
            "job-00000", "job-00001", "job-00002"
        ]

    def test_stream_replays_then_follows(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            job_id = await service.submit(JobSpec(**SMALL, seed=1))
            await service.wait(job_id)
            # subscribe *after* completion: pure replay
            events = [e async for e in service.stream(job_id)]
            await service.shutdown()
            return events

        events = run_async(scenario())
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert kinds.count("generation") >= 1
        generations = [e for e in events if e["event"] == "generation"]
        assert all("best_fitness" in e for e in generations)

    def test_admission_error_surfaces_and_records_nothing(self, tmp_path):
        async def scenario():
            service = EvolutionService(
                max_concurrent=1,
                quotas=QuotaConfig(max_population=8),
                data_dir=tmp_path,
            )
            await service.start()
            with pytest.raises(AdmissionError):
                await service.submit(
                    JobSpec(env="cartpole", population_size=64)
                )
            jobs = service.list_jobs()
            await service.shutdown()
            return jobs

        assert run_async(scenario()) == []

    def test_invalid_spec_rejected(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1)
            await service.start()
            with pytest.raises(ValueError):
                await service.submit(JobSpec(env="not-an-env"))
            await service.shutdown()

        run_async(scenario())


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            # a long-ish job occupies the only slot...
            runner = await service.submit(
                JobSpec(env="cartpole", population_size=8, generations=6)
            )
            # ...so this one stays queued long enough to cancel
            victim = await service.submit(JobSpec(**SMALL))
            status = await service.cancel(victim)
            assert status["state"] == "cancelled"
            final = await service.wait(victim)
            await service.wait(runner)
            await service.shutdown()
            return final

        final = run_async(scenario())
        assert final["state"] == "cancelled"
        assert final["generations_done"] == 0

    def test_cancel_running_leaves_loadable_checkpoint(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            job_id = await service.submit(
                JobSpec(env="cartpole", population_size=8, generations=50,
                        seed=2)
            )
            # wait until it is genuinely mid-run (first generation done)
            async for event in service.stream(job_id):
                if event["event"] == "generation":
                    break
            await service.cancel(job_id)
            final = await service.wait(job_id)
            await service.shutdown()
            return final

        final = run_async(scenario())
        assert final["state"] == "cancelled"
        assert 1 <= final["generations_done"] < 50
        # the cancel checkpoint is complete and loadable
        restored = load_checkpoint(final["checkpoint_path"])
        assert restored.generation == final["generations_done"]


class TestResume:
    def test_resume_continues_from_checkpoint(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            first = await service.submit(JobSpec(**SMALL, seed=4))
            first_status = await service.wait(first)
            resumed = await service.submit(
                JobSpec(**SMALL, seed=4,
                        resume_from=first_status["checkpoint_path"])
            )
            resumed_status = await service.wait(resumed)
            await service.shutdown()
            return first_status, resumed_status

        first, resumed = run_async(scenario())
        assert first["state"] == "completed"
        assert resumed["state"] == "completed"
        # generation counter carries across the resume boundary
        assert resumed["generations_done"] > first["generations_done"]

    def test_resume_missing_checkpoint_rejected(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1)
            await service.start()
            with pytest.raises(ValueError, match="resume_from"):
                await service.submit(
                    JobSpec(**SMALL, resume_from=str(tmp_path / "no.json"))
                )
            await service.shutdown()

        run_async(scenario())


class TestShutdown:
    def test_drain_shutdown_cancels_queued_finishes_running(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=1, data_dir=tmp_path)
            await service.start()
            running = await service.submit(JobSpec(**SMALL, seed=1))
            queued = await service.submit(JobSpec(**SMALL, seed=2))
            await service.shutdown(drain=True)
            return service.status(running), service.status(queued)

        running, queued = run_async(scenario())
        assert running["state"] in ("completed", "cancelled")
        assert queued["state"] == "cancelled"

    def test_submit_after_shutdown_refused(self):
        async def scenario():
            service = EvolutionService(max_concurrent=1)
            await service.start()
            await service.shutdown()
            with pytest.raises(RuntimeError, match="shut down"):
                await service.submit(JobSpec(**SMALL))

        run_async(scenario())

    def test_stats_shape(self, tmp_path):
        async def scenario():
            service = EvolutionService(max_concurrent=2, data_dir=tmp_path)
            await service.start()
            job_id = await service.submit(JobSpec(**SMALL))
            await service.wait(job_id)
            stats = service.stats()
            await service.shutdown()
            return stats

        stats = run_async(scenario())
        assert stats["jobs"] == {"completed": 1}
        assert set(stats["latency_seconds"]) == {"p50", "p95", "p99"}
        assert stats["pool"]["created"] == 1
