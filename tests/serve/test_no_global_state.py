"""Acceptance gate: no module-level run state in ``repro.serve``.

Walks every module in the package with ``ast`` and rejects
module-level assignments that could hold mutable cross-job state —
the process-global pattern this PR removed from telemetry and the
worker pool must never creep into the serve layer.

Allowed at module scope: imports, ``class``/``def``, docstrings,
``__all__``, ``if TYPE_CHECKING`` blocks, and UPPER_CASE constants
bound to immutable literals (str/int/float/bool/None, tuples of
those) or ``frozenset(...)`` / ``ContextVar(...)`` calls.
"""

import ast
from pathlib import Path

import pytest

import repro.serve

PACKAGE_DIR = Path(repro.serve.__file__).parent
MODULES = sorted(PACKAGE_DIR.glob("*.py"))

#: calls that produce immutable (or deliberately context-scoped) values
ALLOWED_CALLS = {"frozenset", "ContextVar"}


def is_immutable_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(is_immutable_literal(item) for item in node.elts)
    if isinstance(node, ast.UnaryOp):
        return is_immutable_literal(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(
            func, "attr", None
        )
        return name in ALLOWED_CALLS
    return False


def module_level_violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text())
    violations: list[str] = []
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom, ast.ClassDef,
                             ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.If)):
            continue
        if isinstance(node, ast.Expr):  # docstrings and bare expressions
            continue
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            names = [
                t.id for t in targets if isinstance(t, ast.Name)
            ]
            if names == ["__all__"]:
                continue
            value = node.value
            if value is not None and is_immutable_literal(value):
                # constants must *look* like constants
                lowercase = [n for n in names if not n.isupper()]
                if not lowercase:
                    continue
            violations.append(
                f"{path.name}:{node.lineno}: module-level assignment "
                f"to {', '.join(names) or '<target>'}"
            )
            continue
        violations.append(
            f"{path.name}:{node.lineno}: unexpected module-level "
            f"{type(node).__name__}"
        )
    return violations


def test_package_has_modules():
    assert len(MODULES) >= 6  # jobs, queue, pool, service, server, client


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.name)
def test_no_module_level_run_state(path):
    assert module_level_violations(path) == []
