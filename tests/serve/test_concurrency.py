"""The determinism-under-concurrency contract (ISSUE 10 acceptance).

Two interleaved seeded runs — on threads and through the asyncio
service — must be fitness bit-identical to the same runs executed
sequentially, and each job's trace must contain only its own spans.
These tests are what the contextvars telemetry refactor, the
per-instance worker state, and the stateless serve layer exist for.
"""

import asyncio
import threading

from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.serve import EvolutionService, JobSpec
from repro.telemetry import TelemetrySession

CONFIG = NEATConfig(population_size=8)
GENERATIONS = 3


def run_history(seed: int, backend: str = "cpu-fast",
                population_size: int = 8,
                session: TelemetrySession | None = None) -> list[float]:
    result = E3(
        "cartpole",
        backend=backend,
        neat_config=NEATConfig(population_size=population_size),
        seed=seed,
        telemetry=session,
    ).run(max_generations=GENERATIONS)
    return [stats.best_fitness for stats in result.history]


class TestInterleavedThreads:
    def test_threaded_runs_bit_identical_to_sequential(self):
        sequential = {seed: run_history(seed) for seed in (1, 2, 3, 4)}
        results: dict[int, list[float]] = {}
        barrier = threading.Barrier(4)

        def worker(seed: int) -> None:
            barrier.wait()  # maximize interleaving: all start together
            results[seed] = run_history(seed)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in (1, 2, 3, 4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == sequential

    def test_same_seed_twice_concurrently(self):
        # the hardest aliasing case: identical jobs racing each other
        expected = run_history(7)
        results: list[list[float]] = [[], []]
        barrier = threading.Barrier(2)

        def worker(slot: int) -> None:
            barrier.wait()
            results[slot] = run_history(7)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results[0] == expected
        assert results[1] == expected


class TestInterleavedService:
    def test_service_runs_bit_identical_to_solo_runs(self, tmp_path):
        solo = {seed: run_history(seed) for seed in (5, 6, 7)}

        async def scenario():
            service = EvolutionService(max_concurrent=3, data_dir=tmp_path)
            await service.start()
            ids = {
                seed: await service.submit(
                    JobSpec(env="cartpole", population_size=8,
                            generations=GENERATIONS, seed=seed,
                            backend="cpu-fast")
                )
                for seed in (5, 6, 7)
            }
            for job_id in ids.values():
                await service.wait(job_id)
            histories = {
                seed: service.jobs[job_id].history
                for seed, job_id in ids.items()
            }
            await service.shutdown()
            return histories

        assert asyncio.run(scenario()) == solo


class TestTraceIsolation:
    def test_concurrent_sessions_capture_only_their_own_spans(self):
        # population sizes discriminate the jobs: every backend.evaluate
        # span records how many genomes it evaluated
        sizes = {0: 8, 1: 12}
        sessions = {slot: TelemetrySession() for slot in sizes}
        barrier = threading.Barrier(2)

        def worker(slot: int) -> None:
            barrier.wait()
            run_history(
                seed=slot,
                population_size=sizes[slot],
                session=sessions[slot],
            )

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for slot, session in sessions.items():
            evaluates = [
                span for span in session.tracer.spans
                if span.name == "backend.evaluate"
            ]
            assert len(evaluates) == GENERATIONS
            assert all(
                span.attrs["genomes"] == sizes[slot] for span in evaluates
            ), f"slot {slot} trace contains another job's spans"

    def test_service_traced_jobs_are_isolated(self, tmp_path):
        from repro.telemetry import read_trace_jsonl

        async def scenario():
            service = EvolutionService(max_concurrent=2, data_dir=tmp_path)
            await service.start()
            ids = [
                await service.submit(
                    JobSpec(env="cartpole", population_size=size,
                            generations=GENERATIONS, seed=9, trace=True)
                )
                for size in (8, 12)
            ]
            statuses = [await service.wait(job_id) for job_id in ids]
            await service.shutdown()
            return statuses

        statuses = asyncio.run(scenario())
        for status, size in zip(statuses, (8, 12)):
            rows = read_trace_jsonl(status["trace_path"])
            evaluates = [
                row for row in rows
                if row.get("type") == "span"
                and row.get("name") == "backend.evaluate"
            ]
            assert len(evaluates) == GENERATIONS
            assert all(
                row["attrs"]["genomes"] == size for row in evaluates
            ), "a job's exported trace leaked another job's spans"
