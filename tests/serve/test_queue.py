"""JobQueue ordering, admission control, and per-tenant quotas."""

import pytest

from repro.serve.jobs import Job, JobSpec
from repro.serve.queue import AdmissionError, JobQueue, QuotaConfig


def make_job(job_id: str, tenant: str = "t0", priority: int = 0,
             **spec_kwargs) -> Job:
    return Job(
        id=job_id,
        spec=JobSpec(**spec_kwargs),
        tenant=tenant,
        priority=priority,
    )


class TestOrdering:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        for i in range(4):
            queue.submit(make_job(f"job-{i}"))
        popped = [queue.pop_eligible({}).id for _ in range(4)]
        assert popped == ["job-0", "job-1", "job-2", "job-3"]

    def test_higher_priority_first(self):
        queue = JobQueue()
        queue.submit(make_job("low", priority=0))
        queue.submit(make_job("high", priority=5))
        queue.submit(make_job("mid", priority=3))
        popped = [queue.pop_eligible({}).id for _ in range(3)]
        assert popped == ["high", "mid", "low"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop_eligible({}) is None

    def test_remove_withdraws_queued_job(self):
        queue = JobQueue()
        keep, drop = make_job("keep"), make_job("drop")
        queue.submit(keep)
        queue.submit(drop)
        assert queue.remove(drop)
        assert not queue.remove(drop)  # already gone
        assert queue.pop_eligible({}) is keep
        assert queue.pop_eligible({}) is None


class TestAdmission:
    def test_queue_depth_cap(self):
        queue = JobQueue(QuotaConfig(max_queue_depth=2))
        queue.submit(make_job("a"))
        queue.submit(make_job("b"))
        with pytest.raises(AdmissionError, match="queue full"):
            queue.submit(make_job("c"))

    def test_per_tenant_queued_cap(self):
        queue = JobQueue(QuotaConfig(max_queued_per_tenant=1))
        queue.submit(make_job("a", tenant="greedy"))
        with pytest.raises(AdmissionError, match="greedy"):
            queue.submit(make_job("b", tenant="greedy"))
        # other tenants are unaffected
        queue.submit(make_job("c", tenant="polite"))

    def test_spec_ceilings(self):
        queue = JobQueue(
            QuotaConfig(max_population=16, max_generations=10, max_workers=0)
        )
        with pytest.raises(AdmissionError, match="population_size"):
            queue.submit(make_job("a", population_size=32))
        with pytest.raises(AdmissionError, match="generations"):
            queue.submit(make_job("b", population_size=8, generations=100))
        with pytest.raises(AdmissionError, match="workers"):
            queue.submit(make_job("c", population_size=8, workers=2))
        # a refused job never entered the queue
        assert len(queue) == 0


class TestDispatchQuota:
    def test_saturated_tenant_skipped_without_losing_order(self):
        queue = JobQueue(QuotaConfig(max_running_per_tenant=1))
        queue.submit(make_job("g1", tenant="greedy", priority=9))
        queue.submit(make_job("g2", tenant="greedy", priority=9))
        queue.submit(make_job("p1", tenant="polite"))
        # greedy already runs one job: its high-priority entries are
        # skipped, polite dispatches instead
        job = queue.pop_eligible({"greedy": 1})
        assert job.id == "p1"
        # once greedy frees up, its jobs come back in FIFO order
        assert queue.pop_eligible({}).id == "g1"
        assert queue.pop_eligible({}).id == "g2"

    def test_all_tenants_saturated(self):
        queue = JobQueue(QuotaConfig(max_running_per_tenant=1))
        queue.submit(make_job("a", tenant="t0"))
        assert queue.pop_eligible({"t0": 1}) is None
        assert len(queue) == 1  # still queued, nothing lost


class TestSpecValidation:
    def test_unknown_env(self):
        with pytest.raises(ValueError):
            JobSpec(env="nope").validate()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            JobSpec(backend="tpu").validate()

    def test_bad_numbers(self):
        with pytest.raises(ValueError):
            JobSpec(population_size=1).validate()
        with pytest.raises(ValueError):
            JobSpec(generations=0).validate()
        with pytest.raises(ValueError):
            JobSpec(workers=-1).validate()

    def test_round_trips_through_dict(self):
        spec = JobSpec(env="acrobot", seed=7, trace=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_dict({"env": "cartpole", "gpu_count": 8})
