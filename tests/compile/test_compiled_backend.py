"""``cpu-compiled`` backend contract: bit-identical, cached, observable.

The determinism contract is the same one every backend signs: identical
fitness trajectories to ``cpu`` under identical seeds.  On top of that,
the compiled backend must reuse structures across weight mutations
(the whole point), report compile-cache stats shaped like the decode
cache's, emit its telemetry spans, and degrade exactly like
``cpu-fast`` for non-vectorizable shapes and sharded runs.
"""

import numpy as np
import pytest

from repro.core.backends import (
    BACKENDS,
    CompiledCPUBackend,
    CPUBackend,
    FastCPUBackend,
)
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.telemetry.metrics import MetricsRegistry, set_metrics
from repro.telemetry.spans import Tracer, set_tracer

from tests.conftest import evolved_genome


def _cfg(env_name="cartpole"):
    if env_name == "lunar_lander":
        return NEATConfig(num_inputs=8, num_outputs=4, population_size=6)
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg, seed=0, mutations=6):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(cfg.population_size)
    ]


def _evaluate(backend, genomes):
    try:
        backend.evaluate(genomes)
        backend.drain()
    finally:
        backend.close()
    return {g.key: g.fitness for g in genomes}


class TestRegistration:
    def test_registered(self):
        assert BACKENDS["cpu-compiled"] is CompiledCPUBackend
        assert CompiledCPUBackend.name == "cpu-compiled"


@pytest.mark.parametrize("env_name", ["cartpole", "lunar_lander"])
class TestParity:
    def test_bit_identical_to_cpu(self, env_name):
        cfg = _cfg(env_name)
        baseline = _evaluate(
            CPUBackend(env_name, cfg, base_seed=1, episodes_per_genome=2),
            _genomes(cfg),
        )
        compiled = _evaluate(
            CompiledCPUBackend(
                env_name, cfg, base_seed=1, episodes_per_genome=2
            ),
            _genomes(cfg),
        )
        assert compiled == baseline

    def test_second_generation_reuses_structures(self, env_name):
        """Weight-mutated offspring hit the compile cache and still
        match the reference bits."""
        cfg = _cfg(env_name)
        offspring = []
        for genome in _genomes(cfg):
            clone = genome.copy(new_key=100 + genome.key)
            for conn in clone.connections.values():
                conn.weight += 0.0625
            offspring.append(clone)

        baseline = _evaluate(
            CPUBackend(env_name, cfg, base_seed=1),
            [g.copy() for g in offspring],
        )
        backend = CompiledCPUBackend(env_name, cfg, base_seed=1)
        try:
            backend.evaluate(_genomes(cfg))  # gen 0: builds structures
            misses_after_first = backend.compile_cache_info()["misses"]
            backend.evaluate(offspring)  # gen 1: weight mutations only
            info = backend.compile_cache_info()
        finally:
            backend.close()
        assert {g.key: g.fitness for g in offspring} == baseline
        # every offspring shares a parent's shape: zero new compiles
        assert info["misses"] == misses_after_first
        assert info["hits"] >= len(offspring)

    def test_sharded_matches_inprocess(self, env_name):
        cfg = _cfg(env_name)
        baseline = _evaluate(
            CompiledCPUBackend(env_name, cfg, base_seed=1), _genomes(cfg)
        )
        sharded = _evaluate(
            CompiledCPUBackend(env_name, cfg, base_seed=1, workers=2),
            _genomes(cfg),
        )
        assert sharded == baseline

    def test_records_match_cpu_fast(self, env_name):
        """Workload records (recipe-lowered HW configs, lengths) equal
        the decode path's."""
        cfg = _cfg(env_name)
        fast = FastCPUBackend(env_name, cfg, base_seed=1)
        compiled = CompiledCPUBackend(env_name, cfg, base_seed=1)
        try:
            fast.evaluate(_genomes(cfg))
            compiled.evaluate(_genomes(cfg))
        finally:
            fast.close()
            compiled.close()
        assert fast.records[0].configs == compiled.records[0].configs
        assert (
            fast.records[0].episode_lengths
            == compiled.records[0].episode_lengths
        )


class TestFallbacks:
    def test_unvectorizable_genome_uses_reference_path(self):
        cfg = _cfg()
        genomes = _genomes(cfg)
        exotic = _genomes(cfg)
        for battery in (genomes, exotic):
            for node in battery[2].nodes.values():
                node.aggregation = "mean"  # vectorizer only supports sum
                break
        baseline = _evaluate(CPUBackend("cartpole", cfg, base_seed=1), genomes)
        compiled = _evaluate(
            CompiledCPUBackend("cartpole", cfg, base_seed=1), exotic
        )
        assert compiled == baseline


class TestObservability:
    def test_compile_spans_emitted(self):
        cfg = _cfg()
        tracer = Tracer()
        set_tracer(tracer)
        try:
            _evaluate(
                CompiledCPUBackend("cartpole", cfg, base_seed=1),
                _genomes(cfg),
            )
        finally:
            set_tracer(None)
        names = {span.name for span in tracer.spans}
        assert "compile.build" in names
        assert "compile.batch_step" in names
        assert "compile.lookup" in names
        batch = next(
            s for s in tracer.spans if s.name == "compile.batch_step"
        )
        assert batch.attrs["buckets"] >= 1
        assert batch.attrs["slots"] == cfg.population_size

    def test_compile_cache_gauges_published(self):
        cfg = _cfg()
        registry = MetricsRegistry()
        set_metrics(registry)
        try:
            _evaluate(
                CompiledCPUBackend("cartpole", cfg, base_seed=1),
                _genomes(cfg),
            )
        finally:
            set_metrics(None)
        snapshot = registry.snapshot()
        assert "compile.cache.hits" in snapshot
        assert "compile.cache.misses" in snapshot
        assert "compile.cache.size" in snapshot

    def test_cache_info_shapes_match(self):
        """compile_cache_info mirrors cache_info's reporting shape."""
        cfg = _cfg()
        backend = CompiledCPUBackend("cartpole", cfg, base_seed=1)
        try:
            backend.evaluate(_genomes(cfg))
            decode = backend.cache_info()
            compiled = backend.compile_cache_info()
        finally:
            backend.close()
        assert set(compiled) == set(decode)
        # the compiled path never touches the decode LRU
        assert decode["hits"] == decode["misses"] == 0
        assert compiled["misses"] >= 1
