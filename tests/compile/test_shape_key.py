"""Shape-key contract: the weights-excluded topology signature.

Satellite coverage for the structural-batching compiler:

* (hypothesis) two genomes with equal topology signature but different
  weights land in the **same compile bucket** and still produce
  **independent** outputs — each member's row equals its own network's
  forward pass, not its bucket-mate's;
* a signature-collision sanity sweep across every registered env's
  champion genome: equal shape keys must mean identical decoded
  structure, never two different topologies sharing a bucket.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compile import (
    CompileCache,
    CompiledPopulationEvaluator,
    CompiledStructure,
)
from repro.core.platform import E3
from repro.envs.registry import registered_names
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork
from repro.neat.vectorized import VectorizedNetwork

from tests.conftest import evolved_genome


@st.composite
def evolved_setup(draw):
    num_inputs = draw(st.integers(1, 5))
    num_outputs = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    mutations = draw(st.integers(0, 16))
    config = NEATConfig(num_inputs=num_inputs, num_outputs=num_outputs)
    tracker = InnovationTracker(num_outputs)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(config, tracker, rng, mutations=mutations)
    return config, genome


@settings(max_examples=30, deadline=None)
@given(setup=evolved_setup(), delta=st.floats(0.01, 2.0))
def test_weight_mutated_clone_shares_bucket_with_independent_outputs(
    setup, delta
):
    """Equal topology signature + different weights -> one bucket, two
    independent rows."""
    config, genome = setup
    clone = genome.copy(new_key=genome.key + 1)
    for conn in clone.connections.values():
        conn.weight += delta
    for node in clone.nodes.values():
        node.bias -= delta

    # the signature ignores parameters; the weighted hash must not
    assert clone.shape_key() == genome.shape_key()
    assert clone.structural_hash() != genome.structural_hash()

    cache = CompileCache(8)
    first = cache.get(genome, config)
    second = cache.get(clone, config)
    assert second is first, "same shape key must reuse the structure"
    assert cache.info()["hits"] == 1

    if first.plan is None:
        return
    evaluator = CompiledPopulationEvaluator(
        [(first, genome), (second, clone)]
    )
    assert evaluator.num_buckets == 1
    rng = np.random.default_rng(0)
    observations = {
        0: rng.normal(size=config.num_inputs),
        1: rng.normal(size=config.num_inputs),
    }
    results = evaluator.infer(observations)
    for slot, member in ((0, genome), (1, clone)):
        own = VectorizedNetwork(FeedForwardNetwork.create(member, config))
        assert np.array_equal(
            results[slot], own.activate(observations[slot])
        ), "bucket member must produce its own network's outputs"


@settings(max_examples=30, deadline=None)
@given(setup=evolved_setup())
def test_structural_hash_equal_implies_shape_key_equal(setup):
    _, genome = setup
    copy = genome.copy(new_key=genome.key + 1)
    assert copy.structural_hash() == genome.structural_hash()
    assert copy.shape_key() == genome.shape_key()


def test_disabled_connection_weight_is_shape_irrelevant():
    """A disabled connection's weight moves the structural hash but not
    the shape key — the decoder never reads it."""
    config = NEATConfig(num_inputs=3, num_outputs=2)
    tracker = InnovationTracker(config.num_outputs)
    rng = np.random.default_rng(5)
    genome = evolved_genome(config, tracker, rng, mutations=6)
    conn = next(iter(genome.connections.values()))
    conn.enabled = False
    before = (genome.shape_key(), genome.structural_hash())
    conn.weight += 1.5
    assert genome.shape_key() == before[0]
    assert genome.structural_hash() != before[1]


def test_no_signature_collisions_across_registered_env_champions():
    """Champions from a short run on every registered env: equal shape
    keys must correspond to identical decoded structure (same layer
    recipes), and genomes whose decoded structure differs must get
    distinct keys.  The signature is genome-only while the decode also
    reads the config's input/output keys, so the promise — and the
    grouping here — is per task arity (caches are per-backend, hence
    per-config, in production)."""
    by_key: dict[tuple, list[tuple[str, CompiledStructure]]] = {}
    for env_name in registered_names():
        e3 = E3(
            env_name,
            backend="cpu-compiled",
            neat_config=NEATConfig(population_size=6),
            seed=0,
        )
        try:
            result = e3.run(max_generations=2, fitness_threshold=None)
            champions = [result.best_genome] + list(
                e3.population.population
            )
            for genome in champions:
                structure = CompiledStructure.from_genome(
                    genome, e3.neat_config
                )
                group = (
                    e3.neat_config.num_inputs,
                    e3.neat_config.num_outputs,
                    genome.shape_key(),
                )
                by_key.setdefault(group, []).append(
                    (env_name, structure)
                )
                # serialization cannot perturb the signature
                restored = Genome.from_dict(genome.to_dict())
                assert restored.shape_key() == genome.shape_key()
        finally:
            e3.backend.close()

    assert len(by_key) > 1
    for (_, _, key), entries in by_key.items():
        _, reference = entries[0]
        for env_name, structure in entries[1:]:
            assert structure.rows == reference.rows, (
                f"shape-key collision: {key[:12]} maps to different "
                f"structures (env {env_name})"
            )
            assert structure.input_keys == reference.input_keys
            assert structure.output_keys == reference.output_keys
