"""Unit contract of the structural-batching compiler pieces.

Everything here pins the bit-identity chain the ``cpu-compiled``
backend rests on: recipe-lowered HW configs equal ``compile_genome``,
filled parameter tensors equal a fresh decode's plan, and the fused
bucket/population evaluators reproduce the per-genome vectorized
forward pass exactly.
"""

import numpy as np
import pytest

from repro.compile import (
    CompileCache,
    CompiledBucket,
    CompiledPopulationEvaluator,
    CompiledStructure,
)
from repro.inax.compiler import compile_genome
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork
from repro.neat.vectorized import VectorizedNetwork, _NetPlan

from tests.conftest import evolved_genome


def _cfg(num_inputs=4, num_outputs=2):
    return NEATConfig(
        num_inputs=num_inputs, num_outputs=num_outputs, population_size=8
    )


def _genomes(cfg, count=6, mutations=8, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(count)
    ]


def _perturbed(genome, new_key, delta=0.125):
    """A weight/bias-mutated clone: same shape, different parameters."""
    clone = genome.copy(new_key=new_key)
    for conn in clone.connections.values():
        conn.weight += delta
    for node in clone.nodes.values():
        node.bias -= delta
    return clone


class TestCompiledStructure:
    def test_hw_config_matches_compile_genome(self):
        cfg = _cfg()
        for genome in _genomes(cfg):
            structure = CompiledStructure.from_genome(genome, cfg)
            assert structure.hw_config(genome) == compile_genome(genome, cfg)

    def test_hw_config_for_same_shape_clone(self):
        """One structure lowers *any* same-shape genome correctly."""
        cfg = _cfg()
        for genome in _genomes(cfg):
            structure = CompiledStructure.from_genome(genome, cfg)
            clone = _perturbed(genome, 100 + genome.key)
            assert clone.shape_key() == genome.shape_key()
            assert structure.hw_config(clone) == compile_genome(clone, cfg)

    def test_fill_parameters_matches_fresh_decode(self):
        """Filled tensors equal a from-scratch ``_NetPlan`` bit for bit."""
        cfg = _cfg()
        for genome in _genomes(cfg):
            structure = CompiledStructure.from_genome(genome, cfg)
            clone = _perturbed(genome, 100 + genome.key)
            fresh = _NetPlan(FeedForwardNetwork.create(clone, cfg))
            params = structure.fill_parameters(clone)
            assert len(params) == len(fresh.layers)
            for (weights, biases), layer in zip(params, fresh.layers):
                assert np.array_equal(weights, layer.weights)
                assert np.array_equal(biases, layer.biases)

    def test_unvectorizable_shape_still_lowers(self):
        cfg = _cfg()
        genome = _genomes(cfg, count=1)[0]
        for node in genome.nodes.values():
            node.aggregation = "mean"  # vectorizer only supports sum
            break
        structure = CompiledStructure.from_genome(genome, cfg)
        assert structure.plan is None
        assert structure.hw_config(genome) == compile_genome(genome, cfg)
        with pytest.raises(ValueError):
            structure.fill_parameters(genome)
        with pytest.raises(ValueError):
            CompiledBucket(structure, [genome])


class TestCompileCache:
    def test_shape_reuse_hits(self):
        cfg = _cfg()
        genome = _genomes(cfg, count=1)[0]
        cache = CompileCache(8)
        first = cache.get(genome, cfg)
        clone = _perturbed(genome, 500)
        assert cache.get(clone, cfg) is first
        assert cache.info() == {
            "hits": 1, "misses": 1, "size": 1, "warmed": 0,
        }

    def test_lru_eviction(self):
        cfg = _cfg()
        genomes = _genomes(cfg, count=3, mutations=10, seed=3)
        keys = {g.shape_key() for g in genomes}
        assert len(keys) == 3, "need three distinct shapes for this test"
        cache = CompileCache(2)
        for genome in genomes:
            cache.get(genome, cfg)
        assert len(cache) == 2
        # the oldest shape was evicted: re-getting it misses again
        cache.get(genomes[0], cfg)
        assert cache.info()["misses"] == 4

    def test_warm_counts_separately(self):
        cfg = _cfg()
        genome = _genomes(cfg, count=1)[0]
        cache = CompileCache(8)
        assert cache.warm(genome, cfg) is True
        assert cache.warm(genome, cfg) is False  # already cached
        info = cache.info()
        assert info == {"hits": 0, "misses": 0, "size": 1, "warmed": 1}
        # a later get is a hit, not a miss — warming restored the state
        cache.get(_perturbed(genome, 500), cfg)
        assert cache.info()["hits"] == 1


class TestFusedEvaluation:
    def test_bucket_activate_matches_vectorized(self):
        """One fused batched step == each member's own forward pass."""
        cfg = _cfg()
        genome = _genomes(cfg, count=1)[0]
        members = [genome] + [
            _perturbed(genome, 200 + i, delta=0.05 * (i + 1))
            for i in range(5)
        ]
        structure = CompiledStructure.from_genome(genome, cfg)
        bucket = CompiledBucket(structure, members)
        obs = np.random.default_rng(7).normal(size=(len(members), 4))
        out = bucket.activate(obs)
        for row, member in enumerate(members):
            reference = VectorizedNetwork(
                FeedForwardNetwork.create(member, cfg)
            )
            assert np.array_equal(out[row], reference.activate(obs[row]))

    def test_population_evaluator_mixed_shapes(self):
        cfg = _cfg()
        genomes = _genomes(cfg)
        cache = CompileCache(32)
        members = [
            (cache.get(g, cfg), g) for g in genomes for _ in range(2)
        ]
        evaluator = CompiledPopulationEvaluator(members)
        assert evaluator.num_buckets == len(
            {g.shape_key() for g in genomes}
        )
        rng = np.random.default_rng(11)
        observations = {
            slot: rng.normal(size=4) for slot in range(len(members))
        }
        results = evaluator.infer(observations)
        for slot, (_, genome) in enumerate(members):
            reference = VectorizedNetwork(
                FeedForwardNetwork.create(genome, cfg)
            )
            assert np.array_equal(
                results[slot], reference.activate(observations[slot])
            )

    def test_rebuild_on_shrink_keeps_bits(self):
        """Dropping to a small alive set (episode terminations) rebuilds
        the flat tensors from the shared member plans without changing
        any output bit."""
        cfg = _cfg()
        genomes = _genomes(cfg)
        cache = CompileCache(32)
        members = [(cache.get(g, cfg), g) for g in genomes]
        evaluator = CompiledPopulationEvaluator(members)
        rebuilds = evaluator.rebuilds
        rng = np.random.default_rng(13)
        alive = [0, 3]  # well under REBUILD_FRACTION of 6
        observations = {slot: rng.normal(size=4) for slot in alive}
        results = evaluator.infer(observations)
        assert evaluator.rebuilds == rebuilds + 1
        for slot in alive:
            reference = VectorizedNetwork(
                FeedForwardNetwork.create(genomes[slot], cfg)
            )
            assert np.array_equal(
                results[slot], reference.activate(observations[slot])
            )
