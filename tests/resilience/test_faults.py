"""Unit tests for the seeded fault-injection layer."""

import json
import math
import pickle

import pytest

from repro.resilience.faults import (
    KNOWN_KINDS,
    WORKER_ERROR,
    FaultPlan,
    FaultSpec,
    InjectedWorkerError,
    flip_float64_bit,
    maybe_fail_worker,
)


class TestFlipBit:
    def test_double_flip_is_identity(self):
        for bit in (0, 31, 51, 52, 62, 63):
            value = 1.2345
            assert flip_float64_bit(flip_float64_bit(value, bit), bit) == value

    def test_flip_changes_the_value(self):
        for bit in range(64):
            flipped = flip_float64_bit(0.5, bit)
            # NaN compares unequal to everything, which still proves change
            assert flipped != 0.5 or math.isnan(flipped)

    def test_sign_bit(self):
        assert flip_float64_bit(1.0, 63) == -1.0

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_float64_bit(1.0, 64)
        with pytest.raises(ValueError):
            flip_float64_bit(1.0, -1)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor.strike", probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind=WORKER_ERROR, probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind=WORKER_ERROR, probability=-0.1)

    def test_every_known_kind_constructs(self):
        for kind in KNOWN_KINDS:
            FaultSpec(kind=kind, probability=0.1)


class TestFaultPlan:
    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                seed=1,
                specs=[
                    FaultSpec(WORKER_ERROR, 0.1),
                    FaultSpec(WORKER_ERROR, 0.2),
                ],
            )

    def test_fires_is_deterministic(self):
        plan_a = FaultPlan(seed=3, specs=[FaultSpec(WORKER_ERROR, 0.5)])
        plan_b = FaultPlan(seed=3, specs=[FaultSpec(WORKER_ERROR, 0.5)])
        sites = [f"gen={g}|shard={s}" for g in range(10) for s in range(4)]
        assert [plan_a.fires(WORKER_ERROR, s) for s in sites] == [
            plan_b.fires(WORKER_ERROR, s) for s in sites
        ]

    def test_different_seeds_differ(self):
        sites = [f"site={i}" for i in range(64)]
        a = FaultPlan(seed=1, specs=[FaultSpec(WORKER_ERROR, 0.5)])
        b = FaultPlan(seed=2, specs=[FaultSpec(WORKER_ERROR, 0.5)])
        assert [a.fires(WORKER_ERROR, s) for s in sites] != [
            b.fires(WORKER_ERROR, s) for s in sites
        ]

    def test_probability_extremes(self):
        always = FaultPlan(seed=0, specs=[FaultSpec(WORKER_ERROR, 1.0)])
        never = FaultPlan(seed=0, specs=[FaultSpec(WORKER_ERROR, 0.0)])
        unarmed = FaultPlan(seed=0)
        for site in ("a", "b", "c"):
            assert always.fires(WORKER_ERROR, site)
            assert not never.fires(WORKER_ERROR, site)
            assert not unarmed.fires(WORKER_ERROR, site)

    def test_probability_roughly_respected(self):
        plan = FaultPlan(seed=9, specs=[FaultSpec(WORKER_ERROR, 0.25)])
        hits = sum(
            plan.fires(WORKER_ERROR, f"site={i}") for i in range(2000)
        )
        assert 0.15 < hits / 2000 < 0.35

    def test_rng_for_is_deterministic_and_site_keyed(self):
        plan = FaultPlan(seed=4, specs=[FaultSpec(WORKER_ERROR, 1.0)])
        a = plan.rng_for(WORKER_ERROR, "x").integers(1 << 30)
        b = plan.rng_for(WORKER_ERROR, "x").integers(1 << 30)
        c = plan.rng_for(WORKER_ERROR, "y").integers(1 << 30)
        assert a == b
        assert a != c

    def test_has(self):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(WORKER_ERROR, 0.5),
                FaultSpec("inax.wedge", 0.0),
            ],
        )
        assert plan.has(WORKER_ERROR)
        assert not plan.has("inax.wedge")  # armed at zero = not armed
        assert not plan.has("env.obs_nan")
        assert plan.has("env.obs_nan", WORKER_ERROR)

    def test_record_and_event_log(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec(WORKER_ERROR, 1.0)])
        plan.record(WORKER_ERROR, "gen=0|shard=1", detail=7)
        log = plan.event_log()
        assert log == [
            {
                "kind": WORKER_ERROR,
                "site": "gen=0|shard=1",
                "details": {"detail": 7},
            }
        ]

    def test_pickle_round_trip(self):
        plan = FaultPlan(seed=5, specs=[FaultSpec(WORKER_ERROR, 0.3, 2.0)])
        clone = pickle.loads(pickle.dumps(plan))
        sites = [f"s{i}" for i in range(32)]
        assert [clone.fires(WORKER_ERROR, s) for s in sites] == [
            plan.fires(WORKER_ERROR, s) for s in sites
        ]


class TestParseAndLoad:
    def test_parse_grammar(self):
        plan = FaultPlan.parse(
            "seed=7,worker.crash@0.25,inax.pu_stall@0.1:500"
        )
        assert plan.seed == 7
        assert plan.specs["worker.crash"].probability == 0.25
        assert plan.specs["inax.pu_stall"].param == 500.0

    def test_parse_bad_term(self):
        with pytest.raises(ValueError, match="bad fault term"):
            FaultPlan.parse("worker.crash")

    def test_parse_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("meteor.strike@0.5")

    def test_dict_round_trip(self):
        plan = FaultPlan.parse("seed=3,worker.error@0.5,dma.input_drop@0.1")
        clone = FaultPlan.from_dict(plan.to_dict())
        sites = [f"s{i}" for i in range(32)]
        for kind in ("worker.error", "dma.input_drop"):
            assert [clone.fires(kind, s) for s in sites] == [
                plan.fires(kind, s) for s in sites
            ]

    def test_load_from_file_and_inline(self, tmp_path):
        plan = FaultPlan.parse("seed=11,env.obs_nan@0.2")
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        from_file = FaultPlan.load(path)
        inline = FaultPlan.load("seed=11,env.obs_nan@0.2")
        assert from_file.seed == inline.seed == 11
        assert from_file.specs.keys() == inline.specs.keys()


class TestWorkerFaults:
    def test_none_plan_is_noop(self):
        maybe_fail_worker(None, "anywhere")

    def test_error_kind_raises(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec(WORKER_ERROR, 1.0)])
        with pytest.raises(InjectedWorkerError, match="gen=0"):
            maybe_fail_worker(plan, "gen=0|shard=0|attempt=0")

    def test_unfired_site_passes(self):
        plan = FaultPlan(seed=0, specs=[FaultSpec(WORKER_ERROR, 0.0)])
        maybe_fail_worker(plan, "gen=0|shard=0|attempt=0")
