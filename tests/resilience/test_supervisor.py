"""Unit tests for shard supervision (watchdog, retry, degradation)."""

import multiprocessing

from repro.resilience.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    shutdown_pool,
)


class _Handle:
    """AsyncResult stand-in: evaluates the task lazily on get()."""

    def __init__(self, fn, task):
        self._fn = fn
        self._task = task

    def get(self, timeout=None):
        result = self._fn(self._task)
        if result == "__timeout__":
            raise multiprocessing.TimeoutError()
        return result


class _FakePool:
    """Just enough Pool surface for the supervisor."""

    def __init__(self, log):
        self._log = log
        self.terminated = False

    def apply_async(self, fn, args):
        return _Handle(fn, args[0])

    def terminate(self):
        self.terminated = True

    def join(self):
        pass


def _config(**overrides):
    defaults = dict(
        shard_timeout=5.0,
        max_retries=2,
        backoff_base=0.0,
        join_timeout=1.0,
        disable_after=2,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _supervisor(worker, config=None, pools=None):
    pools = pools if pools is not None else []

    def factory():
        pool = _FakePool(pools)
        pools.append(pool)
        return pool

    return ShardSupervisor(factory, worker, config or _config()), pools


class TestRun:
    def test_clean_run(self):
        supervisor, pools = _supervisor(lambda task: task * 10)
        results = supervisor.run(
            3, lambda index, attempt: index, lambda index: -1
        )
        assert results == [0, 10, 20]
        assert supervisor.events == []
        assert len(pools) == 1

    def test_error_retries_on_fresh_pool_then_succeeds(self):
        def worker(task):
            index, attempt = task
            if attempt == 0:
                raise RuntimeError("injected")
            return index

        supervisor, pools = _supervisor(worker)
        results = supervisor.run(
            2, lambda index, attempt: (index, attempt), lambda index: -1
        )
        assert results == [0, 1]
        assert supervisor.errors == 2
        assert supervisor.retries == 2
        assert supervisor.respawns == 1
        assert len(pools) == 2  # the first pool was torn down
        assert pools[0].terminated
        kinds = [event.kind for event in supervisor.events]
        assert kinds.count("shard.error") == 2
        assert kinds.count("pool.respawn") == 1

    def test_timeout_counts_and_retries(self):
        def worker(task):
            index, attempt = task
            return "__timeout__" if attempt == 0 and index == 1 else index

        supervisor, _ = _supervisor(worker)
        results = supervisor.run(
            3, lambda index, attempt: (index, attempt), lambda index: -1
        )
        assert results == [0, 1, 2]
        assert supervisor.timeouts == 1
        sites = [event.site for event in supervisor.events]
        assert "shard=1|attempt=0" in sites

    def test_exhausted_retries_degrade_to_fallback(self):
        def worker(task):
            raise RuntimeError("always broken")

        supervisor, _ = _supervisor(worker)
        results = supervisor.run(
            2, lambda index, attempt: index, lambda index: ("fallback", index)
        )
        assert results == [("fallback", 0), ("fallback", 1)]
        assert supervisor.degraded_shards == 2
        assert supervisor.consecutive_degraded == 1
        kinds = [event.kind for event in supervisor.events]
        assert kinds.count("shard.degraded") == 2

    def test_partial_failure_keeps_good_results(self):
        def worker(task):
            index, attempt = task
            if index == 0:
                raise RuntimeError("shard 0 cursed")
            return index * 10

        supervisor, _ = _supervisor(worker)
        results = supervisor.run(
            3, lambda index, attempt: (index, attempt), lambda index: -99
        )
        assert results == [-99, 10, 20]
        assert supervisor.degraded_shards == 1

    def test_disables_after_consecutive_degraded_runs(self):
        def worker(task):
            raise RuntimeError("always broken")

        supervisor, pools = _supervisor(worker, _config(disable_after=2))
        for _ in range(2):
            supervisor.run(1, lambda i, a: i, lambda i: "soft")
        assert supervisor.disabled
        assert "supervisor.disabled" in [e.kind for e in supervisor.events]
        # once disabled, the pool is never touched again
        pool_count = len(pools)
        results = supervisor.run(2, lambda i, a: i, lambda i: ("soft", i))
        assert results == [("soft", 0), ("soft", 1)]
        assert len(pools) == pool_count

    def test_success_resets_consecutive_degraded(self):
        calls = {"run": 0}

        def worker(task):
            if calls["run"] == 0:
                raise RuntimeError("first generation cursed")
            return task

        supervisor, _ = _supervisor(worker, _config(disable_after=2))
        supervisor.run(1, lambda i, a: i, lambda i: "soft")
        assert supervisor.consecutive_degraded == 1
        calls["run"] = 1
        supervisor.run(1, lambda i, a: i, lambda i: "soft")
        assert supervisor.consecutive_degraded == 0
        assert not supervisor.disabled

    def test_site_prefix_threads_through(self):
        def worker(task):
            raise RuntimeError("boom")

        supervisor, _ = _supervisor(worker, _config(max_retries=0))
        supervisor.run(1, lambda i, a: i, lambda i: 0, site_prefix="gen=7|")
        assert all(
            event.site.startswith("gen=7|") for event in supervisor.events
        )


class TestLifecycle:
    def test_close_is_idempotent(self):
        supervisor, pools = _supervisor(lambda task: task)
        supervisor.run(1, lambda i, a: i, lambda i: 0)
        supervisor.close()
        supervisor.close()
        assert pools[0].terminated

    def test_pool_respawns_after_close(self):
        supervisor, pools = _supervisor(lambda task: task)
        supervisor.run(1, lambda i, a: i, lambda i: 0)
        supervisor.close()
        supervisor.run(1, lambda i, a: i, lambda i: 0)
        assert len(pools) == 2


class TestShutdownPool:
    def test_real_pool_shuts_down_within_bound(self):
        pool = multiprocessing.Pool(1)
        assert shutdown_pool(pool, join_timeout=10.0)

    def test_fake_pool_join_bound(self):
        class Wedged:
            def terminate(self):
                pass

            def join(self):
                import time

                time.sleep(60)

        assert not shutdown_pool(Wedged(), join_timeout=0.1)
