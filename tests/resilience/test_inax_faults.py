"""Device-level fault injection against the functional INAX model."""

import numpy as np
import pytest

from repro.inax.accelerator import INAX, INAXConfig
from repro.inax.synthetic import synthetic_population
from repro.resilience.faults import DeviceFault, FaultPlan
from repro.resilience.injectors import DeviceFaultInjector


NUM_PUS = 4
STEPS = 6


def _population(n=3, seed=0):
    return synthetic_population(
        num_individuals=n, num_hidden=6, seed=seed
    )


def _inputs(num_inputs, num_slots, step, base_seed=0):
    rng = np.random.default_rng(base_seed * 1000 + step)
    return {
        slot: rng.standard_normal(num_inputs) for slot in range(num_slots)
    }


def _run_wave(device, configs, steps=STEPS):
    """Drive one wave and return (outputs-per-step, report)."""
    device.begin_wave(configs)
    trace = []
    for step in range(steps):
        outputs = device.step(
            _inputs(configs[0].num_inputs, len(configs), step)
        )
        trace.append({k: v.tobytes() for k, v in sorted(outputs.items())})
    device.end_wave()
    return trace, device.report


def _device(plan=None):
    injector = DeviceFaultInjector(plan) if plan is not None else None
    return INAX(
        INAXConfig(num_pus=NUM_PUS, num_pes_per_pu=2),
        fault_injector=injector,
    )


class TestWeightBitflip:
    def test_flip_replaces_config_copy_not_shared_object(self):
        pop = _population()
        plan = FaultPlan.parse("seed=3,inax.weight_bitflip@1.0")
        device = _device(plan)
        baseline = [cfg.layers for cfg in pop]
        device.begin_wave(pop)
        # the loaded config was replaced by a corrupted copy...
        for slot in range(len(pop)):
            assert device.pus[slot]._config is not pop[slot]
        # ...and the shared compiled objects are untouched
        assert [cfg.layers for cfg in pop] == baseline
        device.step(_inputs(pop[0].num_inputs, len(pop), 0))
        device.end_wave()
        kinds = [e.kind for e in plan.events]
        assert kinds.count("inax.weight_bitflip") == len(pop)

    def test_unfired_plan_loads_shared_config(self):
        pop = _population()
        plan = FaultPlan.parse("seed=3,inax.weight_bitflip@0.0")
        device = _device(plan)
        device.begin_wave(pop)
        for slot in range(len(pop)):
            assert device.pus[slot]._config is pop[slot]
        device.abort_wave()
        assert plan.events == []


class TestWedge:
    def test_wedge_raises_and_abort_allows_next_wave(self):
        pop = _population()
        plan = FaultPlan.parse("seed=0,inax.wedge@1.0")
        device = _device(plan)
        device.begin_wave(pop)
        with pytest.raises(DeviceFault, match="inax.wedge"):
            device.step(_inputs(pop[0].num_inputs, len(pop), 0))
        # the wedged wave is discarded; the device accepts a fresh wave
        device.abort_wave()
        device.abort_wave()  # double abort is a no-op
        clean = _device()
        clean_trace, _ = _run_wave(clean, pop)
        device.fault_injector = None
        retry_trace, _ = _run_wave(device, pop)
        assert retry_trace == clean_trace

    def test_wedge_event_site_names_wave_and_step(self):
        pop = _population()
        plan = FaultPlan.parse("seed=0,inax.wedge@1.0")
        device = _device(plan)
        device.begin_wave(pop)
        with pytest.raises(DeviceFault):
            device.step(_inputs(pop[0].num_inputs, len(pop), 0))
        assert plan.events[0].site == "wave=0|step=0"


class TestCycleOnlyFaults:
    """Stall and input-drop perturb timing, never values."""

    def test_pu_stall_burns_cycles_but_keeps_outputs(self):
        pop = _population()
        clean_trace, clean_report = _run_wave(_device(), pop)
        plan = FaultPlan.parse("seed=2,inax.pu_stall@1.0:500")
        faulty_trace, faulty_report = _run_wave(_device(plan), pop)
        assert faulty_trace == clean_trace
        # every step's slowest PU carried the 500-cycle stall
        assert (
            faulty_report.compute_cycles
            >= clean_report.compute_cycles + STEPS * 500
        )
        assert len(plan.events) == STEPS * len(pop)

    def test_input_drop_inflates_io_cycles_only(self):
        pop = _population()
        clean_trace, clean_report = _run_wave(_device(), pop)
        plan = FaultPlan.parse("seed=2,dma.input_drop@1.0")
        faulty_trace, faulty_report = _run_wave(_device(plan), pop)
        assert faulty_trace == clean_trace
        assert faulty_report.io_cycles > clean_report.io_cycles
        assert [e.kind for e in plan.events] == ["dma.input_drop"] * STEPS


class TestDataFaults:
    def test_output_corrupt_changes_values(self):
        pop = _population()
        clean_trace, _ = _run_wave(_device(), pop)
        plan = FaultPlan.parse("seed=5,dma.output_corrupt@1.0")
        faulty_trace, _ = _run_wave(_device(plan), pop)
        assert faulty_trace != clean_trace
        event = plan.events[0]
        assert event.kind == "dma.output_corrupt"
        assert {"index", "bit", "before", "after"} <= event.details.keys()

    def test_value_bitflip_records_per_slot_sites(self):
        pop = _population()
        plan = FaultPlan.parse("seed=5,inax.value_bitflip@1.0")
        _run_wave(_device(plan), pop, steps=1)
        sites = {e.site for e in plan.events}
        assert sites == {
            f"wave=0|step=0|slot={slot}|in" for slot in range(len(pop))
        }


class TestDeterminism:
    def test_same_plan_replays_identical_outputs_and_events(self):
        pop = _population()
        spec = "seed=7,dma.output_corrupt@0.3,inax.pu_stall@0.2:100"
        plan_a = FaultPlan.parse(spec)
        plan_b = FaultPlan.parse(spec)
        trace_a, report_a = _run_wave(_device(plan_a), pop)
        trace_b, report_b = _run_wave(_device(plan_b), pop)
        assert trace_a == trace_b
        assert plan_a.event_log() == plan_b.event_log()
        assert report_a.compute_cycles == report_b.compute_cycles
        assert report_a.io_cycles == report_b.io_cycles

    def test_wave_counter_is_monotonic_across_waves(self):
        pop = _population()
        plan = FaultPlan.parse("seed=5,inax.value_bitflip@1.0")
        device = _device(plan)
        for _ in range(2):
            device.begin_wave(pop)
            device.step(_inputs(pop[0].num_inputs, len(pop), 0))
            device.end_wave()
        waves = {e.site.split("|")[0] for e in plan.events}
        assert waves == {"wave=0", "wave=1"}

    def test_no_injector_path_matches_disarmed_plan(self):
        pop = _population()
        clean_trace, clean_report = _run_wave(_device(), pop)
        plan = FaultPlan(seed=1)  # armed with nothing
        noop_trace, noop_report = _run_wave(_device(plan), pop)
        assert noop_trace == clean_trace
        assert noop_report.compute_cycles == clean_report.compute_cycles
        assert noop_report.io_cycles == clean_report.io_cycles
