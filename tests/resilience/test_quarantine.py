"""Unit tests for non-finite fitness quarantine."""

import math

from repro.resilience.quarantine import (
    DEFAULT_PENALTY,
    QUARANTINE,
    quarantine_nonfinite,
)


class _Genome:
    def __init__(self, key, fitness):
        self.key = key
        self.fitness = fitness


class TestQuarantine:
    def test_finite_fitness_untouched(self):
        genomes = [_Genome(1, 10.0), _Genome(2, -3.5), _Genome(3, 0.0)]
        events = quarantine_nonfinite(genomes)
        assert events == []
        assert [g.fitness for g in genomes] == [10.0, -3.5, 0.0]

    def test_nan_and_inf_replaced_with_penalty(self):
        genomes = [
            _Genome(1, float("nan")),
            _Genome(2, float("inf")),
            _Genome(3, float("-inf")),
            _Genome(4, 5.0),
        ]
        events = quarantine_nonfinite(genomes)
        assert len(events) == 3
        assert [g.fitness for g in genomes] == [
            DEFAULT_PENALTY,
            DEFAULT_PENALTY,
            DEFAULT_PENALTY,
            5.0,
        ]
        assert all(math.isfinite(g.fitness) for g in genomes)

    def test_none_fitness_is_left_alone(self):
        genome = _Genome(7, None)
        assert quarantine_nonfinite([genome]) == []
        assert genome.fitness is None

    def test_custom_penalty(self):
        genome = _Genome(1, float("nan"))
        quarantine_nonfinite([genome], penalty=-42.0)
        assert genome.fitness == -42.0

    def test_event_structure(self):
        genome = _Genome(9, float("nan"))
        (event,) = quarantine_nonfinite(
            [genome], site_prefix="gen=4|"
        )
        assert event.kind == QUARANTINE
        assert event.site == "gen=4|genome=9"
        assert event.details["fitness"] == "nan"
        assert event.details["penalty"] == DEFAULT_PENALTY

    def test_penalty_orders_below_real_fitness(self):
        # the sentinel must lose every comparison against a real score
        assert DEFAULT_PENALTY < -1e6
        assert math.isfinite(DEFAULT_PENALTY)
