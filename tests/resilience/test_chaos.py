"""End-to-end chaos determinism: faults never change the numbers.

The resilience contract has two halves, both asserted here against the
real backends on CartPole:

* **transparency** — supervised retries, degraded shards, and per-wave
  software fallback produce fitness values *bit-identical* to a
  fault-free run (the per-(genome, episode) seeding contract);
* **replayability** — the same :class:`FaultPlan` over the same run
  yields the same structured event log, byte for byte.
"""

import numpy as np
import pytest

from repro.core.backends import CPUBackend, FastCPUBackend, INAXBackend
from repro.inax.accelerator import INAXConfig
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisorConfig

from tests.conftest import evolved_genome


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg, n=6, mutations=6, seed=0):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(n)
    ]


def _fitness(backend, cfg, **genome_kwargs):
    genomes = _genomes(cfg, **genome_kwargs)
    try:
        backend.evaluate(genomes)
    finally:
        backend.close()
    return [g.fitness for g in genomes]


def _fast_supervisor(**overrides):
    defaults = dict(
        shard_timeout=30.0,
        max_retries=1,
        backoff_base=0.0,
        join_timeout=5.0,
        disable_after=99,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestWorkerChaosTransparency:
    def test_worker_error_chaos_is_bit_identical(self):
        cfg = _cfg()
        clean = _fitness(
            FastCPUBackend("cartpole", cfg, base_seed=1, workers=0), cfg
        )
        # every attempt errors -> retries exhaust -> in-process degrade
        backend = FastCPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            workers=2,
            fault_plan=FaultPlan.parse("seed=0,worker.error@1.0"),
            supervisor=_fast_supervisor(),
        )
        chaotic = _fitness(backend, cfg)
        assert chaotic == clean
        supervisor = backend._supervisor
        assert supervisor.degraded_shards == 2
        assert supervisor.errors > 0

    @pytest.mark.slow
    def test_worker_crash_chaos_is_bit_identical(self):
        cfg = _cfg()
        clean = _fitness(
            FastCPUBackend("cartpole", cfg, base_seed=1, workers=0), cfg
        )
        # seed=3 crashes shard 0 at attempt 0 and nothing at attempt 1,
        # so the watchdog fires exactly once and the retry succeeds
        backend = FastCPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            workers=2,
            fault_plan=FaultPlan.parse("seed=3,worker.crash@0.5"),
            supervisor=_fast_supervisor(shard_timeout=3.0, max_retries=2),
        )
        chaotic = _fitness(backend, cfg)
        assert chaotic == clean
        supervisor = backend._supervisor
        assert supervisor.timeouts >= 1
        assert supervisor.respawns >= 1
        assert supervisor.degraded_shards == 0

    def test_disabled_supervisor_still_completes(self):
        cfg = _cfg()
        clean = _fitness(
            FastCPUBackend("cartpole", cfg, base_seed=1, workers=0), cfg
        )
        backend = FastCPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            workers=2,
            fault_plan=FaultPlan.parse("seed=0,worker.error@1.0"),
            supervisor=_fast_supervisor(disable_after=1),
        )
        genomes = _genomes(cfg)
        try:
            backend.evaluate(genomes)  # degrades -> disables sharding
            assert backend._supervisor.disabled
            second = _genomes(cfg)
            backend.evaluate(second)  # runs fully in-process
        finally:
            backend.close()
        assert [g.fitness for g in second] == clean


class TestReplayability:
    def test_same_plan_yields_identical_event_logs(self):
        cfg = _cfg()
        logs = []
        fitnesses = []
        for _ in range(2):
            backend = FastCPUBackend(
                "cartpole",
                cfg,
                base_seed=1,
                workers=2,
                fault_plan=FaultPlan.parse("seed=0,worker.error@1.0"),
                supervisor=_fast_supervisor(),
            )
            fitnesses.append(_fitness(backend, cfg))
            logs.append(backend.resilience_log())
        assert logs[0] == logs[1]
        assert logs[0]  # the chaos actually happened
        assert fitnesses[0] == fitnesses[1]

    def test_inax_chaos_replay_matches(self):
        cfg = _cfg()
        logs = []
        for _ in range(2):
            backend = INAXBackend(
                "cartpole",
                cfg,
                inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
                base_seed=1,
                fallback="cpu-fast",
                fault_plan=FaultPlan.parse("seed=11,inax.wedge@0.05"),
            )
            _fitness(backend, cfg)
            logs.append(backend.resilience_log())
        assert logs[0] == logs[1]


class TestINAXDegradation:
    def test_wedged_waves_fall_back_bit_identically(self):
        cfg = _cfg()
        clean = _fitness(
            INAXBackend(
                "cartpole",
                cfg,
                inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
                base_seed=1,
            ),
            cfg,
        )
        backend = INAXBackend(
            "cartpole",
            cfg,
            inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
            base_seed=1,
            fallback="cpu-fast",
            fault_plan=FaultPlan.parse("seed=0,inax.wedge@1.0"),
        )
        chaotic = _fitness(backend, cfg)
        assert chaotic == clean
        # 6 genomes over 3 PUs = 2 waves, every one wedged at step 0
        assert backend.fallback_waves == 2
        assert backend.fallback_genomes == 6
        kinds = [e.kind for e in backend.resilience_events]
        assert kinds.count("fallback.wave") == 2

    def test_wedge_without_fallback_raises(self):
        from repro.resilience.faults import DeviceFault

        cfg = _cfg()
        backend = INAXBackend(
            "cartpole",
            cfg,
            inax_config=INAXConfig(num_pus=3, num_pes_per_pu=2),
            base_seed=1,
            fault_plan=FaultPlan.parse("seed=0,inax.wedge@1.0"),
        )
        with pytest.raises(DeviceFault):
            backend.evaluate(_genomes(cfg))

    def test_oversize_fallback_matches_software_path(self):
        cfg = _cfg()
        clean = _fitness(CPUBackend("cartpole", cfg, base_seed=1), cfg)
        backend = INAXBackend(
            "cartpole",
            cfg,
            # capacity 1 word: every genome is oversized
            inax_config=INAXConfig(
                num_pus=3, num_pes_per_pu=2, weight_buffer_capacity=1
            ),
            base_seed=1,
            oversize_policy="raise",
            fallback="cpu-fast",
        )
        degraded = _fitness(backend, cfg)
        assert degraded == clean
        assert backend.oversize_count == 6
        assert backend.fallback_genomes == 6
        kinds = [e.kind for e in backend.resilience_events]
        assert kinds.count("fallback.oversize") == 6


class TestQuarantineEndToEnd:
    def test_reward_nan_quarantines_whole_population(self):
        cfg = _cfg()
        backend = CPUBackend(
            "cartpole",
            cfg,
            base_seed=1,
            fault_plan=FaultPlan.parse("seed=0,env.reward_nan@1.0"),
            quarantine_penalty=-123.0,
        )
        fitnesses = _fitness(backend, cfg)
        assert fitnesses == [-123.0] * 6
        assert backend.quarantine_count == 6
        kinds = [e.kind for e in backend.resilience_events]
        assert kinds.count("quarantine.nonfinite") == 6

    def test_env_faults_fire_identically_across_backends(self):
        """The env fault stream keys on episode seeds, not the backend."""
        cfg = _cfg()
        plan_text = "seed=9,env.obs_nan@0.05"
        cpu = _fitness(
            CPUBackend(
                "cartpole",
                cfg,
                base_seed=1,
                fault_plan=FaultPlan.parse(plan_text),
            ),
            cfg,
        )
        fast = _fitness(
            FastCPUBackend(
                "cartpole",
                cfg,
                base_seed=1,
                workers=0,
                fault_plan=FaultPlan.parse(plan_text),
            ),
            cfg,
        )
        assert fast == cpu


class TestReporterColumns:
    def test_fastcpu_columns(self):
        cfg = _cfg()
        inprocess = FastCPUBackend("cartpole", cfg, base_seed=1, workers=0)
        sharded = FastCPUBackend("cartpole", cfg, base_seed=1, workers=2)
        try:
            # supervision columns only appear when sharding is possible
            assert set(inprocess.reporter_columns()) == {"quarantined"}
            assert set(sharded.reporter_columns()) == {
                "quarantined",
                "shard_retries",
                "shard_degraded",
            }
        finally:
            inprocess.close()
            sharded.close()

    def test_inax_columns_gain_fallback_when_armed(self):
        cfg = _cfg()
        plain = INAXBackend("cartpole", cfg, base_seed=1)
        armed = INAXBackend("cartpole", cfg, base_seed=1, fallback="cpu-fast")
        assert set(plain.reporter_columns()) == {
            "quarantined",
            "oversize",
            "pack_eff",
        }
        assert set(armed.reporter_columns()) == {
            "quarantined",
            "oversize",
            "pack_eff",
            "fallback_waves",
        }
