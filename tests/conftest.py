"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_config() -> NEATConfig:
    """A small, fast NEAT config used across unit tests."""
    return NEATConfig(
        num_inputs=3,
        num_outputs=2,
        population_size=20,
        max_generations=10,
    )


@pytest.fixture
def tracker(small_config) -> InnovationTracker:
    return InnovationTracker(small_config.num_outputs)


@pytest.fixture
def initial_genome(small_config, tracker, rng) -> Genome:
    return Genome.initial(0, small_config, tracker, rng)


def evolved_genome(
    config: NEATConfig,
    tracker: InnovationTracker,
    rng: np.random.Generator,
    mutations: int = 10,
    key: int = 0,
) -> Genome:
    """A genome after a number of random structural mutations."""
    genome = Genome.initial(key, config, tracker, rng)
    for _ in range(mutations):
        genome.mutate(config, tracker, rng)
    return genome


# ------------------------------------------------------- hypothesis helpers
seeds = st.integers(min_value=0, max_value=2**31 - 1)
small_ints = st.integers(min_value=1, max_value=8)
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
