"""Unit and property tests for the NEAT genome."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome, creates_cycle
from repro.neat.innovation import InnovationTracker

from tests.conftest import evolved_genome


def _has_cycle(connections) -> bool:
    """Reference cycle check over connection keys."""
    adjacency = {}
    for a, b in connections:
        adjacency.setdefault(a, []).append(b)

    visiting, done = set(), set()

    def dfs(node):
        if node in done:
            return False
        if node in visiting:
            return True
        visiting.add(node)
        for nxt in adjacency.get(node, ()):
            if dfs(nxt):
                return True
        visiting.discard(node)
        done.add(node)
        return False

    return any(dfs(n) for n in list(adjacency))


class TestCreatesCycle:
    def test_self_loop(self):
        assert creates_cycle([], (1, 1))

    def test_simple_cycle(self):
        assert creates_cycle([(1, 2), (2, 3)], (3, 1))

    def test_no_cycle(self):
        assert not creates_cycle([(1, 2), (2, 3)], (1, 3))

    def test_diamond_is_fine(self):
        conns = [(1, 2), (1, 3), (2, 4), (3, 4)]
        assert not creates_cycle(conns, (1, 4))

    def test_back_edge_deep(self):
        conns = [(1, 2), (2, 3), (3, 4), (4, 5)]
        assert creates_cycle(conns, (5, 2))


class TestInitialGenome:
    def test_full_connectivity(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        expected = small_config.num_inputs * small_config.num_outputs
        assert len(genome.connections) == expected
        assert set(genome.nodes) == set(small_config.output_keys)

    def test_partial_connectivity(self, tracker, rng):
        cfg = NEATConfig(
            num_inputs=10, num_outputs=10, initial_connection_fraction=0.3
        )
        tracker = InnovationTracker(10)
        genome = Genome.initial(0, cfg, tracker, rng)
        assert 0 < len(genome.connections) < 100

    def test_size_counts_inputs(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        nodes, conns = genome.size(small_config)
        assert nodes == small_config.num_inputs + small_config.num_outputs
        assert conns == len(genome.connections)


class TestStructuralMutation:
    def test_add_node_splits_connection(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        before = genome.num_enabled_connections
        assert genome.mutate_add_node(small_config, tracker, rng)
        # one disabled, two added
        assert genome.num_enabled_connections == before + 1
        assert genome.num_hidden(small_config) == 1
        # the split preserves function: in-half weight 1, out-half old weight
        disabled = [c for c in genome.connections.values() if not c.enabled]
        assert len(disabled) == 1
        old = disabled[0]
        new_node = [k for k in genome.nodes if k >= small_config.num_outputs][0]
        assert genome.connections[(old.in_node, new_node)].weight == 1.0
        assert (
            genome.connections[(new_node, old.out_node)].weight == old.weight
        )

    def test_add_node_on_empty_genome(self, small_config, tracker, rng):
        genome = Genome(key=0)
        assert not genome.mutate_add_node(small_config, tracker, rng)

    def test_add_connection_no_duplicates(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        # fully connected input->output; only output->output links remain
        added = genome.mutate_add_connection(small_config, tracker, rng)
        if added:
            keys = list(genome.connections)
            assert len(keys) == len(set(keys))

    def test_delete_connection(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        n = len(genome.connections)
        assert genome.mutate_delete_connection(rng)
        assert len(genome.connections) == n - 1

    def test_delete_node_removes_incident_connections(
        self, small_config, tracker, rng
    ):
        genome = Genome.initial(0, small_config, tracker, rng)
        genome.mutate_add_node(small_config, tracker, rng)
        hidden = [k for k in genome.nodes if k >= small_config.num_outputs]
        assert genome.mutate_delete_node(small_config, rng)
        assert not any(
            hidden[0] in key for key in genome.connections
        )

    def test_delete_node_never_removes_outputs(
        self, small_config, tracker, rng
    ):
        genome = Genome.initial(0, small_config, tracker, rng)
        assert not genome.mutate_delete_node(small_config, rng)
        assert set(small_config.output_keys) <= set(genome.nodes)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 30))
    def test_mutation_never_creates_cycles(self, seed, steps):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(cfg.num_outputs)
        rng = np.random.default_rng(seed)
        genome = Genome.initial(0, cfg, tracker, rng)
        for _ in range(steps):
            genome.mutate(cfg, tracker, rng)
            assert not _has_cycle(genome.connections.keys())

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_mutation_preserves_output_nodes(self, seed):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(cfg.num_outputs)
        rng = np.random.default_rng(seed)
        genome = Genome.initial(0, cfg, tracker, rng)
        for _ in range(20):
            genome.mutate(cfg, tracker, rng)
        assert set(cfg.output_keys) <= set(genome.nodes)


class TestDistance:
    def test_identity_is_zero(self, small_config, tracker, rng):
        genome = evolved_genome(small_config, tracker, rng)
        assert genome.distance(genome, small_config) == 0.0

    def test_symmetry(self, small_config, tracker, rng):
        a = evolved_genome(small_config, tracker, rng, key=0)
        b = evolved_genome(small_config, tracker, rng, key=1)
        d_ab = a.distance(b, small_config)
        d_ba = b.distance(a, small_config)
        assert d_ab == pytest.approx(d_ba)

    def test_structural_difference_increases_distance(
        self, small_config, tracker, rng
    ):
        a = Genome.initial(0, small_config, tracker, rng)
        b = a.copy(new_key=1)
        base = a.distance(b, small_config)
        for _ in range(5):
            b.mutate_add_node(small_config, tracker, rng)
        assert a.distance(b, small_config) > base

    def test_empty_genomes(self, small_config):
        a, b = Genome(key=0), Genome(key=1)
        assert a.distance(b, small_config) == 0.0


class TestSerialization:
    def test_round_trip(self, small_config, tracker, rng):
        genome = evolved_genome(small_config, tracker, rng)
        genome.fitness = 12.5
        clone = Genome.from_dict(genome.to_dict())
        assert clone.fitness == 12.5
        assert set(clone.nodes) == set(genome.nodes)
        assert set(clone.connections) == set(genome.connections)
        for key, conn in genome.connections.items():
            other = clone.connections[key]
            assert other.weight == conn.weight
            assert other.enabled == conn.enabled
            assert other.innovation == conn.innovation

    def test_copy_is_deep(self, small_config, tracker, rng):
        genome = Genome.initial(0, small_config, tracker, rng)
        clone = genome.copy(new_key=9)
        first = next(iter(clone.connections.values()))
        first.weight = 99.0
        assert genome.connections[first.key].weight != 99.0
        assert clone.key == 9


class TestStructuralHash:
    def _genome(self, seed=0, mutations=8):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(cfg.num_outputs)
        rng = np.random.default_rng(seed)
        return evolved_genome(cfg, tracker, rng, mutations=mutations)

    def test_copy_hashes_identically(self):
        genome = self._genome()
        assert genome.copy().structural_hash() == genome.structural_hash()

    def test_key_and_fitness_ignored(self):
        """Elites re-keyed across generations must hit the decode cache."""
        genome = self._genome()
        clone = genome.copy(new_key=genome.key + 100)
        clone.fitness = 123.0
        assert clone.structural_hash() == genome.structural_hash()

    def test_innovation_numbers_ignored(self):
        genome = self._genome()
        clone = genome.copy()
        for conn in clone.connections.values():
            conn.innovation += 1000
        assert clone.structural_hash() == genome.structural_hash()

    def test_weight_change_changes_hash(self):
        genome = self._genome()
        clone = genome.copy()
        conn = next(iter(clone.connections.values()))
        conn.weight += 1e-12  # even one ulp-scale nudge must be visible
        assert clone.structural_hash() != genome.structural_hash()

    def test_bias_change_changes_hash(self):
        genome = self._genome()
        clone = genome.copy()
        clone.nodes[0].bias += 0.5
        assert clone.structural_hash() != genome.structural_hash()

    def test_enabled_flag_changes_hash(self):
        genome = self._genome()
        clone = genome.copy()
        conn = next(iter(clone.connections.values()))
        conn.enabled = not conn.enabled
        assert clone.structural_hash() != genome.structural_hash()

    def test_activation_change_changes_hash(self):
        genome = self._genome()
        clone = genome.copy()
        clone.nodes[0].activation = "sigmoid"
        assert clone.structural_hash() != genome.structural_hash()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_distinct_topologies_hash_distinctly(self, seed):
        a = self._genome(seed=seed)
        b = self._genome(seed=seed + 1)

        def structure(genome):
            snapshot = genome.to_dict()
            for conn in snapshot["connections"]:
                del conn["innovation"]  # not part of the decoded network
            del snapshot["key"]
            del snapshot["fitness"]
            return snapshot

        if structure(a) == structure(b):
            assert a.structural_hash() == b.structural_hash()
        else:
            assert a.structural_hash() != b.structural_hash()
