"""Unit and property tests for NEAT crossover."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.crossover import crossover
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker

from tests.conftest import evolved_genome
from tests.neat.test_genome import _has_cycle


def _parents(seed: int, mutations: int = 8):
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(seed)
    a = evolved_genome(cfg, tracker, rng, mutations=mutations, key=0)
    b = evolved_genome(cfg, tracker, rng, mutations=mutations, key=1)
    a.fitness, b.fitness = 2.0, 1.0
    return cfg, rng, a, b


def test_requires_evaluated_parents(small_config, rng, tracker):
    a = Genome.initial(0, small_config, tracker, rng)
    b = Genome.initial(1, small_config, tracker, rng)
    with pytest.raises(ValueError, match="fitness"):
        crossover(a, b, 2, small_config, rng)


def test_child_key_and_outputs():
    cfg, rng, a, b = _parents(0)
    child = crossover(a, b, 42, cfg, rng)
    assert child.key == 42
    assert set(cfg.output_keys) <= set(child.nodes)


def test_child_genes_come_from_parents():
    cfg, rng, a, b = _parents(1)
    child = crossover(a, b, 2, cfg, rng)
    parent_keys = set(a.connections) | set(b.connections)
    assert set(child.connections) <= parent_keys
    parent_nodes = set(a.nodes) | set(b.nodes)
    assert set(child.nodes) <= parent_nodes


def test_fitter_parent_donates_disjoint_genes():
    cfg, rng, a, b = _parents(2)
    # make a strictly fitter and give it a unique gene set
    child = crossover(a, b, 3, cfg, rng)
    b_innovations = {c.innovation for c in b.connections.values()}
    for key, conn in child.connections.items():
        if conn.innovation not in b_innovations:
            # disjoint/excess gene: must exist in the fitter parent a
            assert key in a.connections


def test_connections_reference_existing_nodes():
    for seed in range(10):
        cfg, rng, a, b = _parents(seed)
        child = crossover(a, b, 5, cfg, rng)
        for in_node, out_node in child.connections:
            if in_node >= 0:
                assert in_node in child.nodes
            assert out_node in child.nodes


def test_disable_inheritance_probability():
    cfg = NEATConfig(num_inputs=1, num_outputs=1)
    tracker = InnovationTracker(1)
    rng = np.random.default_rng(0)
    a = Genome.initial(0, cfg, tracker, rng)
    b = a.copy(new_key=1)
    a.fitness = b.fitness = 1.0
    key = (-1, 0)
    a.connections[key].enabled = False  # disabled in one parent
    disabled = 0
    trials = 400
    for i in range(trials):
        child = crossover(a, b, 10 + i, cfg, rng)
        if not child.connections[key].enabled:
            disabled += 1
    assert 0.65 < disabled / trials < 0.85  # ~75% rule


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_crossover_never_creates_cycles(seed):
    cfg, rng, a, b = _parents(seed)
    b.fitness = a.fitness  # equal fitness merges both gene sets
    child = crossover(a, b, 99, cfg, rng)
    assert not _has_cycle(child.connections.keys())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_crossover_of_identical_parents_is_identity_structure(seed):
    cfg = NEATConfig(num_inputs=2, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    a = evolved_genome(cfg, tracker, rng, mutations=5, key=0)
    b = a.copy(new_key=1)
    a.fitness = b.fitness = 1.0
    child = crossover(a, b, 2, cfg, rng)
    assert set(child.connections) == set(a.connections)
    # genes enabled in both parents are always enabled in the child
    for key, conn in a.connections.items():
        if conn.enabled:
            assert child.connections[key].enabled
