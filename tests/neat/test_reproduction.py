"""Unit and property tests for reproduction and offspring allocation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import Reproduction, allocate_offspring
from repro.neat.species import SpeciesSet


class TestAllocateOffspring:
    def test_exact_total(self):
        sizes = allocate_offspring([1.0, 2.0, 3.0], [1, 1, 1], 30)
        assert sum(sizes) == 30
        assert all(s >= 1 for s in sizes)

    def test_proportionality(self):
        sizes = allocate_offspring([1.0, 9.0], [0, 0], 100)
        assert sizes[1] > sizes[0]

    def test_negative_fitness_handled(self):
        sizes = allocate_offspring([-10.0, -5.0], [1, 1], 20)
        assert sum(sizes) == 20
        assert sizes[1] >= sizes[0]

    def test_minimums_respected(self):
        sizes = allocate_offspring([0.0, 100.0], [3, 1], 10)
        assert sizes[0] >= 3
        assert sum(sizes) == 10

    def test_infeasible_minimums_rejected(self):
        with pytest.raises(ValueError):
            allocate_offspring([1.0, 1.0], [6, 6], 10)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            allocate_offspring([1.0], [1, 1], 5)

    def test_empty(self):
        assert allocate_offspring([], [], 0) == []

    @settings(max_examples=100, deadline=None)
    @given(
        fitnesses=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=1, max_size=10
        ),
        extra=st.integers(0, 50),
    )
    def test_property_sums_and_minimums(self, fitnesses, extra):
        mins = [1] * len(fitnesses)
        total = sum(mins) + extra
        sizes = allocate_offspring(fitnesses, mins, total)
        assert sum(sizes) == total
        assert all(s >= m for s, m in zip(sizes, mins))


class TestReproduction:
    def _setup(self, seed=0, pop=20):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=pop)
        tracker = InnovationTracker(cfg.num_outputs)
        rng = np.random.default_rng(seed)
        repro = Reproduction(cfg, tracker)
        population = repro.create_initial_population(rng)
        return cfg, tracker, rng, repro, population

    def test_initial_population_size_and_keys(self):
        cfg, _, _, _, population = self._setup(pop=15)
        assert len(population) == 15
        assert len({g.key for g in population}) == 15

    def test_reproduce_maintains_population_size(self):
        cfg, _, rng, repro, population = self._setup()
        for i, g in enumerate(population):
            g.fitness = float(i)
        ss = SpeciesSet(cfg)
        ss.speciate(population, 0, rng)
        ss.update_fitnesses(0)
        next_pop = repro.reproduce(ss, 0, rng)
        assert len(next_pop) == cfg.population_size

    def test_children_have_fresh_keys_and_no_fitness(self):
        cfg, _, rng, repro, population = self._setup()
        for g in population:
            g.fitness = 1.0
        ss = SpeciesSet(cfg)
        ss.speciate(population, 0, rng)
        ss.update_fitnesses(0)
        next_pop = repro.reproduce(ss, 0, rng)
        old_keys = {g.key for g in population}
        new_keys = {g.key for g in next_pop}
        assert old_keys.isdisjoint(new_keys)
        # elites keep their fitness (copied), children have none
        assert any(g.fitness is None for g in next_pop)

    def test_elites_preserved_structurally(self):
        cfg, _, rng, repro, population = self._setup(seed=3)
        best = population[0]
        best.fitness = 100.0
        for g in population[1:]:
            g.fitness = 0.0
        ss = SpeciesSet(cfg)
        ss.speciate(population, 0, rng)
        ss.update_fitnesses(0)
        next_pop = repro.reproduce(ss, 0, rng)
        # an exact structural copy of the champion must exist
        best_conns = {
            k: (c.weight, c.enabled) for k, c in best.connections.items()
        }
        found = any(
            {
                k: (c.weight, c.enabled) for k, c in g.connections.items()
            }
            == best_conns
            and g.fitness == 100.0
            for g in next_pop
        )
        assert found

    def test_total_extinction_restarts(self):
        cfg, _, rng, repro, _ = self._setup()
        empty = SpeciesSet(cfg)
        next_pop = repro.reproduce(empty, 0, rng)
        assert len(next_pop) == cfg.population_size
