"""Unit tests for NEATConfig validation."""

import pytest

from repro.envs.cartpole import CartPole
from repro.neat.config import NEATConfig


def test_defaults_follow_paper():
    cfg = NEATConfig()
    assert cfg.population_size == 200  # §VI-C
    assert cfg.crossover_rate == 0.5  # §VI-C
    assert cfg.initial_connection_fraction == 1.0


def test_input_output_keys():
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    assert cfg.input_keys == (-1, -2, -3)
    assert cfg.output_keys == (0, 1)


def test_for_env_sizes_interface():
    cfg = NEATConfig().for_env(CartPole())
    assert cfg.num_inputs == 4
    assert cfg.num_outputs == 2
    assert cfg.fitness_threshold == CartPole.reward_threshold


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_inputs": 0},
        {"num_outputs": 0},
        {"population_size": 1},
        {"initial_connection_fraction": 1.5},
        {"survival_threshold": 0.0},
        {"elitism": -1},
        {"weight_min": 5.0, "weight_max": -5.0},
        {"bias_min": 1.0, "bias_max": 1.0},
        {"crossover_rate": 1.2},
        {"conn_add_rate": -0.1},
        {"compatibility_threshold": 0.0},
        {"default_activation": "nope"},
        {"activation_options": ("tanh", "nope")},
        {"default_aggregation": "median"},
        {"aggregation_options": ("sum", "median")},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        NEATConfig(**kwargs)


def test_all_rates_validated():
    # every *_rate field must live in [0, 1]
    for field_name in (
        "weight_mutate_rate",
        "weight_replace_rate",
        "bias_mutate_rate",
        "bias_replace_rate",
        "node_add_rate",
        "node_delete_rate",
        "conn_delete_rate",
        "enable_mutate_rate",
        "activation_mutate_rate",
        "aggregation_mutate_rate",
    ):
        with pytest.raises(ValueError, match=field_name):
            NEATConfig(**{field_name: 1.01})
