"""Unit tests for the NEAT population loop."""

import numpy as np
import pytest

from repro.core.profiler import PhaseProfiler
from repro.neat.config import NEATConfig
from repro.neat.network import FeedForwardNetwork
from repro.neat.population import Population


def _xor_fitness(config):
    """Classic XOR task: fitness = 4 - sum of squared errors."""
    cases = [
        (np.array([0.0, 0.0]), 0.0),
        (np.array([0.0, 1.0]), 1.0),
        (np.array([1.0, 0.0]), 1.0),
        (np.array([1.0, 1.0]), 0.0),
    ]

    def evaluate(genomes):
        for genome in genomes:
            net = FeedForwardNetwork.create(genome, config)
            error = 0.0
            for x, target in cases:
                out = net.activate(x)[0]
                error += (out - target) ** 2
            genome.fitness = 4.0 - error

    return evaluate


def test_population_initializes_with_species():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=10)
    pop = Population(cfg, seed=0)
    assert len(pop.population) == 10
    assert len(pop.species_set) >= 1


def test_missing_fitness_detected():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=10)
    pop = Population(cfg, seed=0)

    def bad_evaluate(genomes):
        genomes[0].fitness = 1.0  # rest left unset

    with pytest.raises(RuntimeError, match="without fitness"):
        pop.advance(bad_evaluate)


def test_run_improves_xor_fitness():
    cfg = NEATConfig(
        num_inputs=2,
        num_outputs=1,
        population_size=60,
        default_activation="sigmoid",
        activation_options=("sigmoid",),
    )
    pop = Population(cfg, seed=3)
    result = pop.run(_xor_fitness(cfg), max_generations=25)
    first = result.history[0].best_fitness
    last = result.history[-1].best_fitness
    assert last >= first
    assert result.best_genome.fitness >= last - 1e-9
    assert result.generations <= 25


def test_run_stops_at_threshold():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=20)

    def easy(genomes):
        for g in genomes:
            g.fitness = 10.0

    pop = Population(cfg, seed=0)
    result = pop.run(easy, max_generations=50, fitness_threshold=5.0)
    assert result.solved
    # solved after the first evaluate/evolve cycle
    assert result.generations == 1


def test_history_records_sizes():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=15)

    def constant(genomes):
        for g in genomes:
            g.fitness = 1.0

    pop = Population(cfg, seed=0)
    pop.run(constant, max_generations=3)
    assert len(pop.history) >= 3
    for stats in pop.history:
        assert stats.population_size == 15
        assert stats.mean_nodes >= 3  # 2 inputs + 1 output minimum
        assert stats.num_species >= 1


def test_profiler_receives_phases():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=15)
    profiler = PhaseProfiler()

    def constant(genomes):
        for g in genomes:
            g.fitness = 1.0

    pop = Population(cfg, seed=0, profiler=profiler)
    pop.run(constant, max_generations=2)
    for phase in ("evaluate", "reproduce", "speciate", "stagnation"):
        assert profiler.seconds(phase) >= 0.0
        assert phase in profiler.phases


def test_best_genome_is_monotone():
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=20)
    rng = np.random.default_rng(0)

    def noisy(genomes):
        for g in genomes:
            g.fitness = float(rng.normal())

    pop = Population(cfg, seed=1)
    best_values = []
    for _ in range(5):
        pop.advance(noisy)
        best_values.append(pop.best_genome.fitness)
    assert best_values == sorted(best_values)
