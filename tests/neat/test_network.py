"""Unit and property tests for CreateNet (genome -> network decoding)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.activations import activations
from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork, required_nodes

from tests.conftest import evolved_genome


def _genome_from_edges(cfg, edges, biases=None):
    """Build a genome from (src, dst, weight) triples."""
    genome = Genome(key=0)
    node_keys = {dst for _, dst, _ in edges} | set(cfg.output_keys)
    node_keys |= {src for src, _, _ in edges if src >= 0}
    for key in node_keys:
        bias = (biases or {}).get(key, 0.0)
        genome.nodes[key] = NodeGene(key, bias, "identity", "sum")
    for i, (src, dst, w) in enumerate(edges):
        genome.connections[(src, dst)] = ConnectionGene((src, dst), w, True, i)
    return genome


class TestRequiredNodes:
    def test_outputs_always_required(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=2)
        genome = _genome_from_edges(cfg, [])
        assert required_nodes(genome, cfg) == {0, 1}

    def test_dead_branch_pruned(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1)
        # node 5 feeds nothing -> not required
        edges = [(-1, 0, 1.0), (-2, 5, 1.0)]
        genome = _genome_from_edges(cfg, edges)
        assert required_nodes(genome, cfg) == {0}

    def test_chain_required(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 3, 1.0), (3, 2, 1.0), (2, 0, 1.0)]
        genome = _genome_from_edges(cfg, edges)
        assert required_nodes(genome, cfg) == {0, 2, 3}

    def test_disabled_connections_ignored(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 1.0), (2, 0, 1.0)]
        genome = _genome_from_edges(cfg, edges)
        genome.connections[(2, 0)].enabled = False
        assert required_nodes(genome, cfg) == {0}


class TestLayering:
    def test_direct_network_single_layer(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=2)
        edges = [(-1, 0, 1.0), (-2, 1, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.layers == [[0, 1]]

    def test_hidden_chain_layers(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.layers == [[2], [3], [0]]

    def test_skip_connection_depth(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        # output consumes both the input directly and a depth-2 node:
        # ASAP places the output at depth 3
        edges = [(-1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0), (-1, 0, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.layers == [[2], [3], [0]]
        assert net.layer_sizes == [1, 1, 1, 1]

    def test_dependencies_precede_dependents(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(2)
        rng = np.random.default_rng(5)
        genome = evolved_genome(cfg, tracker, rng, mutations=25)
        net = FeedForwardNetwork.create(genome, cfg)
        position = {}
        for depth, layer in enumerate(net.layers):
            for key in layer:
                position[key] = depth
        for plan in net.node_evals.values():
            for src, _ in plan.ingress:
                if src >= 0:  # hidden/output source
                    assert position[src] < position[plan.key]


class TestActivate:
    def test_linear_identity_chain(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 2.0), (2, 0, 3.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        out = net.activate(np.array([1.5]))
        assert out[0] == pytest.approx(1.5 * 2.0 * 3.0)

    def test_bias_applied(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 0, 1.0)]
        genome = _genome_from_edges(cfg, edges, biases={0: 0.25})
        net = FeedForwardNetwork.create(genome, cfg)
        assert net.activate(np.array([1.0]))[0] == pytest.approx(1.25)

    def test_tanh_activation_matches_registry(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)])
        genome.nodes[0].activation = "tanh"
        net = FeedForwardNetwork.create(genome, cfg)
        expected = activations.get("tanh")(0.7)
        assert net.activate(np.array([0.7]))[0] == pytest.approx(expected)

    def test_unconnected_output_is_zero(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=2)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)])
        del genome.nodes[1]  # output 1 has no gene and no ingress
        # put it back: outputs always carry genes in real genomes
        genome.nodes[1] = NodeGene(1, 0.0, "identity", "sum")
        net = FeedForwardNetwork.create(genome, cfg)
        out = net.activate(np.array([2.0]))
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(0.0)  # bias-only node

    def test_wrong_input_size_rejected(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1)
        net = FeedForwardNetwork.create(
            _genome_from_edges(cfg, [(-1, 0, 1.0)]), cfg
        )
        with pytest.raises(ValueError, match="expected 2 inputs"):
            net.activate(np.array([1.0]))

    def test_callable_interface(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        net = FeedForwardNetwork.create(
            _genome_from_edges(cfg, [(-1, 0, 0.5)]), cfg
        )
        assert net(np.array([2.0]))[0] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_random_genomes_produce_finite_outputs(self, seed):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(2)
        rng = np.random.default_rng(seed)
        genome = evolved_genome(cfg, tracker, rng, mutations=15)
        net = FeedForwardNetwork.create(genome, cfg)
        for _ in range(5):
            out = net.activate(rng.standard_normal(3))
            assert out.shape == (2,)
            assert np.isfinite(out).all()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_activate_is_deterministic(self, seed):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(2)
        rng = np.random.default_rng(seed)
        genome = evolved_genome(cfg, tracker, rng, mutations=10)
        net = FeedForwardNetwork.create(genome, cfg)
        x = rng.standard_normal(3)
        assert np.array_equal(net.activate(x), net.activate(x))


class TestStatistics:
    def test_num_macs(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1)
        edges = [(-1, 0, 1.0), (-2, 0, 1.0), (-1, 2, 1.0), (2, 0, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.num_macs == 4

    def test_density_simple(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=3)
        # 3 of the 9 possible direct links; dense counterpart has 9
        edges = [(-1, 0, 1.0), (-2, 1, 1.0), (-3, 2, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.density() == pytest.approx(3 / 9)

    def test_density_can_exceed_one(self):
        # Fig 4(c): skip links push connections past the dense counterpart
        cfg = NEATConfig(num_inputs=3, num_outputs=1)
        edges = [
            (-1, 2, 1.0),
            (-2, 2, 1.0),
            (-3, 2, 1.0),
            (2, 0, 1.0),
            (-1, 0, 1.0),
            (-2, 0, 1.0),
            (-3, 0, 1.0),
        ]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        # layers: [3 inputs] -> [2] -> [0]; dense = 3*1 + 1*1 = 4; evolved 7
        assert net.density() == pytest.approx(7 / 4)

    def test_max_fan_in(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=1)
        edges = [(-1, 0, 1.0), (-2, 0, 1.0), (-3, 0, 1.0)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        assert net.max_fan_in == 3
