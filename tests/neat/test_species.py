"""Unit tests for speciation and stagnation."""

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.species import SpeciesSet

from tests.conftest import evolved_genome


def _population(cfg, tracker, rng, n=12, mutations=0):
    return [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(n)
    ]


def test_speciate_partitions_population(small_config, tracker, rng):
    pop = _population(small_config, tracker, rng, n=15, mutations=3)
    ss = SpeciesSet(small_config)
    ss.speciate(pop, generation=0, rng=rng)
    members = [g for s in ss.species.values() for g in s.members]
    assert sorted(g.key for g in members) == sorted(g.key for g in pop)


def test_similar_genomes_share_species(small_config, tracker, rng):
    base = Genome.initial(0, small_config, tracker, rng)
    clones = [base.copy(new_key=i) for i in range(8)]
    ss = SpeciesSet(small_config)
    ss.speciate(clones, generation=0, rng=rng)
    assert len(ss) == 1


def test_distinct_topologies_split_species(rng):
    cfg = NEATConfig(
        num_inputs=3, num_outputs=2, compatibility_threshold=0.5
    )
    tracker = InnovationTracker(2)
    a = Genome.initial(0, cfg, tracker, rng)
    b = a.copy(new_key=1)
    for _ in range(8):
        b.mutate_add_node(cfg, tracker, rng)
        tracker.reset_generation()
    ss = SpeciesSet(cfg)
    ss.speciate([a, b], generation=0, rng=rng)
    assert len(ss) == 2


def test_empty_species_dropped(small_config, tracker, rng):
    pop = _population(small_config, tracker, rng, n=6)
    ss = SpeciesSet(small_config)
    ss.speciate(pop, generation=0, rng=rng)
    # respeciate with a fresh, different population: old species either
    # attract members or disappear
    pop2 = _population(small_config, tracker, rng, n=6, mutations=6)
    ss.speciate(pop2, generation=1, rng=rng)
    for species in ss.species.values():
        assert species.members


def test_update_fitness_tracks_best_and_sharing(small_config, tracker, rng):
    pop = _population(small_config, tracker, rng, n=4)
    for i, g in enumerate(pop):
        g.fitness = float(i)
    ss = SpeciesSet(small_config)
    ss.speciate(pop, generation=0, rng=rng)
    ss.update_fitnesses(generation=0)
    species = list(ss.species.values())
    total_members = sum(s.size for s in species)
    assert total_members == 4
    best = max(s.best_fitness for s in species)
    assert best == 3.0
    # fitness sharing: adjusted sum == sum(fitness)/size per species
    for s in species:
        expected = sum(g.fitness for g in s.members) / s.size
        assert abs(s.adjusted_fitness_sum - expected) < 1e-9


def test_stagnant_species_removed_but_elites_protected(
    small_config, tracker, rng
):
    cfg = NEATConfig(
        num_inputs=3,
        num_outputs=2,
        compatibility_threshold=0.5,
        max_stagnation=2,
        species_elitism=1,
    )
    tracker = InnovationTracker(2)
    a = Genome.initial(0, cfg, tracker, rng)
    b = a.copy(new_key=1)
    for _ in range(8):
        b.mutate_add_node(cfg, tracker, rng)
        tracker.reset_generation()
    a.fitness, b.fitness = 5.0, 1.0
    ss = SpeciesSet(cfg)
    ss.speciate([a, b], generation=0, rng=rng)
    assert len(ss) == 2
    ss.update_fitnesses(0)
    # no improvement for many generations
    for gen in range(1, 6):
        ss.update_fitnesses(gen)
        removed = ss.remove_stagnant(gen)
    assert len(ss) == 1  # the weaker species was culled
    survivor = next(iter(ss.species.values()))
    assert survivor.best_fitness == 5.0  # the elite species survived
    assert removed or True


def test_stagnation_counter_resets_on_improvement(small_config, tracker, rng):
    pop = _population(small_config, tracker, rng, n=3)
    for g in pop:
        g.fitness = 1.0
    ss = SpeciesSet(small_config)
    ss.speciate(pop, generation=0, rng=rng)
    ss.update_fitnesses(0)
    species = next(iter(ss.species.values()))
    assert species.stagnant_for(0) == 0
    # improvement at generation 3 resets the clock
    for g in species.members:
        g.fitness = 2.0
    ss.update_fitnesses(3)
    assert species.last_improved_generation == 3
