"""Unit tests for reporters and checkpointing."""

import io

import numpy as np
import pytest

from repro.neat.checkpoint import (
    checkpoint_to_dict,
    load_checkpoint,
    population_from_dict,
    save_checkpoint,
)
from repro.neat.config import NEATConfig
from repro.neat.population import GenerationStats, Population
from repro.neat.reporters import (
    CSVReporter,
    ConsoleReporter,
    ReporterSet,
    render_csv,
)


def _rechecksum(payload):
    """Re-embed a valid checksum after deliberately tampering a payload."""
    from repro.neat.checkpoint import _payload_checksum

    payload["checksum"] = _payload_checksum(payload)
    return payload


def _stats(gen=0, best=1.0):
    return GenerationStats(
        generation=gen,
        best_fitness=best,
        mean_fitness=0.5,
        num_species=2,
        best_genome_key=3,
        mean_nodes=4.0,
        mean_connections=5.0,
        population_size=10,
    )


class TestReporters:
    def test_console_reporter_prints(self, capsys):
        reporter = ConsoleReporter()
        reporter.on_generation(_stats(gen=7, best=42.0))
        out = capsys.readouterr().out
        assert "gen    7" in out
        assert "42.00" in out

    def test_console_every(self, capsys):
        reporter = ConsoleReporter(every=5)
        for g in range(10):
            reporter.on_generation(_stats(gen=g))
        out = capsys.readouterr().out
        assert out.count("gen") == 2  # generations 0 and 5

    def test_console_invalid_every(self):
        with pytest.raises(ValueError):
            ConsoleReporter(every=0)

    def test_csv_reporter_stream(self):
        buffer = io.StringIO()
        reporter = CSVReporter(buffer)
        reporter.on_generation(_stats(gen=1))
        reporter.on_generation(_stats(gen=2))
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("generation,best_fitness")
        assert len(lines) == 3

    def test_csv_reporter_path(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats())
        assert path.read_text().count("\n") == 2

    def test_csv_reporter_append_skips_header(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats(gen=1))
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(_stats(gen=2))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # one header + three rows
        assert lines[0].startswith("generation,")
        assert sum(line.startswith("generation,") for line in lines) == 1
        assert [line.split(",")[0] for line in lines[1:]] == ["0", "1", "2"]

    def test_csv_reporter_append_fresh_file_writes_header(self, tmp_path):
        path = tmp_path / "new.csv"
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(_stats(gen=0))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("generation,")
        assert len(lines) == 2

    def test_csv_reporter_append_stream(self):
        buffer = io.StringIO()
        CSVReporter(buffer).on_generation(_stats(gen=0))
        CSVReporter(buffer, append=True).on_generation(_stats(gen=1))
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert sum(line.startswith("generation,") for line in lines) == 1

    def test_csv_reporter_default_truncates(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats(gen=1))
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=5))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # header + one row: old history gone
        assert lines[1].split(",")[0] == "5"

    def test_render_csv(self):
        text = render_csv([_stats(0), _stats(1)])
        assert text.count("\n") == 3

    def test_reporter_set_fans_out(self):
        received = []

        class Probe:
            def on_generation(self, stats):
                received.append(stats.generation)

        rs = ReporterSet([Probe()])
        rs.add(Probe())
        rs.on_generation(_stats(gen=4))
        assert received == [4, 4]
        assert len(rs) == 2

    def test_population_notifies_reporters(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=10)
        pop = Population(cfg, seed=0)
        seen = []

        class Probe:
            def on_generation(self, stats):
                seen.append(stats.generation)

        pop.reporters.add(Probe())

        def evaluate(genomes):
            for g in genomes:
                g.fitness = 1.0

        pop.run(evaluate, max_generations=3)
        assert seen == [0, 1, 2]


class TestCheckpoint:
    def _evolved_population(self, generations=3):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=15)
        pop = Population(cfg, seed=4)
        rng = np.random.default_rng(0)

        def evaluate(genomes):
            for g in genomes:
                g.fitness = float(rng.normal())

        for _ in range(generations):
            pop.advance(evaluate)
        return pop, evaluate

    def test_round_trip_preserves_state(self, tmp_path):
        pop, _ = self._evolved_population()
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        restored = load_checkpoint(path)
        assert restored.generation == pop.generation
        assert len(restored.population) == len(pop.population)
        assert {g.key for g in restored.population} == {
            g.key for g in pop.population
        }
        assert len(restored.species_set) == len(pop.species_set)
        assert restored.best_genome.fitness == pop.best_genome.fitness

    def test_resume_is_exact(self, tmp_path):
        """Resuming from a checkpoint reproduces the original run."""
        pop_a, _ = self._evolved_population()
        payload = checkpoint_to_dict(pop_a)
        pop_b = population_from_dict(payload)

        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)

        def eval_a(genomes):
            for g in genomes:
                g.fitness = float(rng_a.normal())

        def eval_b(genomes):
            for g in genomes:
                g.fitness = float(rng_b.normal())

        for _ in range(2):
            best_a = pop_a.advance(eval_a)
            best_b = pop_b.advance(eval_b)
            assert best_a.fitness == best_b.fitness
            assert [g.key for g in pop_a.population] == [
                g.key for g in pop_b.population
            ]

    def test_innovation_counters_restored(self, tmp_path):
        pop, _ = self._evolved_population()
        restored = population_from_dict(checkpoint_to_dict(pop))
        assert (
            restored.tracker.innovation_count
            == pop.tracker.innovation_count
        )
        assert restored.tracker.node_count == pop.tracker.node_count

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            population_from_dict({"format_version": 99})

    def test_checkpoint_survives_json(self, tmp_path):
        # -inf best_fitness on a never-improved species must round-trip
        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "fresh.json"
        save_checkpoint(pop, path)
        restored = load_checkpoint(path)
        for species in restored.species_set.species.values():
            assert species.best_fitness == float("-inf")


class TestCheckpointValidation:
    def test_corrupted_checkpoint_rejected(self, tmp_path):
        import json

        from repro.neat.validate import GenomeValidationError

        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)

        payload = json.loads(path.read_text())
        # corrupt one genome: point a connection at a missing node
        # (recompute the checksum so only validation catches it)
        payload["population"][0]["connections"][0]["out"] = 999
        path.write_text(json.dumps(_rechecksum(payload)))
        with pytest.raises(GenomeValidationError):
            load_checkpoint(path)

    def test_validation_can_be_skipped(self, tmp_path):
        import json

        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        payload = json.loads(path.read_text())
        payload["population"][0]["connections"][0]["out"] = 999
        path.write_text(json.dumps(_rechecksum(payload)))
        restored = load_checkpoint(path, validate=False)
        assert len(restored.population) == 5
