"""Unit tests for reporters and checkpointing."""

import io

import numpy as np
import pytest

from repro.neat.checkpoint import (
    checkpoint_to_dict,
    load_checkpoint,
    population_from_dict,
    save_checkpoint,
)
from repro.neat.config import NEATConfig
from repro.neat.population import GenerationStats, Population
from repro.neat.reporters import (
    CSVReporter,
    ConsoleReporter,
    ReporterSet,
    render_csv,
)


def _rechecksum(payload):
    """Re-embed a valid checksum after deliberately tampering a payload."""
    from repro.neat.checkpoint import _payload_checksum

    payload["checksum"] = _payload_checksum(payload)
    return payload


def _stats(gen=0, best=1.0):
    return GenerationStats(
        generation=gen,
        best_fitness=best,
        mean_fitness=0.5,
        num_species=2,
        best_genome_key=3,
        mean_nodes=4.0,
        mean_connections=5.0,
        population_size=10,
    )


class TestReporters:
    def test_console_reporter_prints(self, capsys):
        reporter = ConsoleReporter()
        reporter.on_generation(_stats(gen=7, best=42.0))
        out = capsys.readouterr().out
        assert "gen    7" in out
        assert "42.00" in out

    def test_console_every(self, capsys):
        reporter = ConsoleReporter(every=5)
        for g in range(10):
            reporter.on_generation(_stats(gen=g))
        out = capsys.readouterr().out
        assert out.count("gen") == 2  # generations 0 and 5

    def test_console_invalid_every(self):
        with pytest.raises(ValueError):
            ConsoleReporter(every=0)

    def test_csv_reporter_stream(self):
        buffer = io.StringIO()
        reporter = CSVReporter(buffer)
        reporter.on_generation(_stats(gen=1))
        reporter.on_generation(_stats(gen=2))
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("generation,best_fitness")
        assert len(lines) == 3

    def test_csv_reporter_path(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats())
        assert path.read_text().count("\n") == 2

    def test_csv_reporter_append_skips_header(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats(gen=1))
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(_stats(gen=2))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # one header + three rows
        assert lines[0].startswith("generation,")
        assert sum(line.startswith("generation,") for line in lines) == 1
        assert [line.split(",")[0] for line in lines[1:]] == ["0", "1", "2"]

    def test_csv_reporter_append_fresh_file_writes_header(self, tmp_path):
        path = tmp_path / "new.csv"
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(_stats(gen=0))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("generation,")
        assert len(lines) == 2

    def test_csv_reporter_append_stream(self):
        buffer = io.StringIO()
        CSVReporter(buffer).on_generation(_stats(gen=0))
        CSVReporter(buffer, append=True).on_generation(_stats(gen=1))
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert sum(line.startswith("generation,") for line in lines) == 1

    def test_csv_reporter_default_truncates(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats(gen=1))
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=5))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2  # header + one row: old history gone
        assert lines[1].split(",")[0] == "5"

    def test_render_csv(self):
        text = render_csv([_stats(0), _stats(1)])
        assert text.count("\n") == 3

    def test_reporter_set_fans_out(self):
        received = []

        class Probe:
            def on_generation(self, stats):
                received.append(stats.generation)

        rs = ReporterSet([Probe()])
        rs.add(Probe())
        rs.on_generation(_stats(gen=4))
        assert received == [4, 4]
        assert len(rs) == 2

    def test_population_notifies_reporters(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=10)
        pop = Population(cfg, seed=0)
        seen = []

        class Probe:
            def on_generation(self, stats):
                seen.append(stats.generation)

        pop.reporters.add(Probe())

        def evaluate(genomes):
            for g in genomes:
                g.fitness = 1.0

        pop.run(evaluate, max_generations=3)
        assert seen == [0, 1, 2]


class TestCheckpoint:
    def _evolved_population(self, generations=3):
        cfg = NEATConfig(num_inputs=3, num_outputs=2, population_size=15)
        pop = Population(cfg, seed=4)
        rng = np.random.default_rng(0)

        def evaluate(genomes):
            for g in genomes:
                g.fitness = float(rng.normal())

        for _ in range(generations):
            pop.advance(evaluate)
        return pop, evaluate

    def test_round_trip_preserves_state(self, tmp_path):
        pop, _ = self._evolved_population()
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        restored = load_checkpoint(path)
        assert restored.generation == pop.generation
        assert len(restored.population) == len(pop.population)
        assert {g.key for g in restored.population} == {
            g.key for g in pop.population
        }
        assert len(restored.species_set) == len(pop.species_set)
        assert restored.best_genome.fitness == pop.best_genome.fitness

    def test_resume_is_exact(self, tmp_path):
        """Resuming from a checkpoint reproduces the original run."""
        pop_a, _ = self._evolved_population()
        payload = checkpoint_to_dict(pop_a)
        pop_b = population_from_dict(payload)

        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)

        def eval_a(genomes):
            for g in genomes:
                g.fitness = float(rng_a.normal())

        def eval_b(genomes):
            for g in genomes:
                g.fitness = float(rng_b.normal())

        for _ in range(2):
            best_a = pop_a.advance(eval_a)
            best_b = pop_b.advance(eval_b)
            assert best_a.fitness == best_b.fitness
            assert [g.key for g in pop_a.population] == [
                g.key for g in pop_b.population
            ]

    def test_innovation_counters_restored(self, tmp_path):
        pop, _ = self._evolved_population()
        restored = population_from_dict(checkpoint_to_dict(pop))
        assert (
            restored.tracker.innovation_count
            == pop.tracker.innovation_count
        )
        assert restored.tracker.node_count == pop.tracker.node_count

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            population_from_dict({"format_version": 99})

    def test_checkpoint_survives_json(self, tmp_path):
        # -inf best_fitness on a never-improved species must round-trip
        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "fresh.json"
        save_checkpoint(pop, path)
        restored = load_checkpoint(path)
        for species in restored.species_set.species.values():
            assert species.best_fitness == float("-inf")


class TestCheckpointValidation:
    def test_corrupted_checkpoint_rejected(self, tmp_path):
        import json

        from repro.neat.validate import GenomeValidationError

        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)

        payload = json.loads(path.read_text())
        # corrupt one genome: point a connection at a missing node
        # (recompute the checksum so only validation catches it)
        payload["population"][0]["connections"][0]["out"] = 999
        path.write_text(json.dumps(_rechecksum(payload)))
        with pytest.raises(GenomeValidationError):
            load_checkpoint(path)

    def test_validation_can_be_skipped(self, tmp_path):
        import json

        cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=5)
        pop = Population(cfg, seed=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        payload = json.loads(path.read_text())
        payload["population"][0]["connections"][0]["out"] = 999
        path.write_text(json.dumps(_rechecksum(payload)))
        restored = load_checkpoint(path, validate=False)
        assert len(restored.population) == 5


def _stats_extra(gen, **extras):
    stats = _stats(gen=gen)
    stats.extras.update(extras)
    return stats


class TestCSVReporterMigration:
    """S2: columns appearing after the header is fixed must not be
    silently dropped — owned files migrate in place, streams warn."""

    def test_resume_with_new_extras_migrates_file(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats(gen=1))
        # the resumed run's backend contributes columns the original
        # header lacks (the fallback_waves/pack_eff scenario)
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(
                _stats_extra(2, fallback_waves=1.0, pack_eff=0.75)
            )
            reporter.on_generation(
                _stats_extra(3, fallback_waves=0.0, pack_eff=0.5)
            )
        import csv as _csv

        with open(path, newline="") as handle:
            rows = list(_csv.DictReader(handle))
        assert len(rows) == 4
        header = path.read_text().splitlines()[0].split(",")
        assert "fallback_waves" in header and "pack_eff" in header
        # old rows pad the new columns with 0
        assert rows[0]["fallback_waves"] == "0"
        assert rows[1]["pack_eff"] == "0"
        # new rows carry the real values, correctly aligned
        assert rows[2]["fallback_waves"] == "1.0"
        assert rows[3]["pack_eff"] == "0.5"
        assert [row["generation"] for row in rows] == ["0", "1", "2", "3"]

    def test_resume_keeps_existing_column_order(self, tmp_path):
        """Appended rows follow the *file's* header order even when the
        resumed run reports extras in a different iteration order."""
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats_extra(0, zeta=1.0, alpha=2.0))
        with CSVReporter(path, append=True) as reporter:
            reporter.on_generation(_stats_extra(1, zeta=3.0, alpha=4.0))
        import csv as _csv

        with open(path, newline="") as handle:
            rows = list(_csv.DictReader(handle))
        assert rows[0]["alpha"] == "2.0" and rows[0]["zeta"] == "1.0"
        assert rows[1]["alpha"] == "4.0" and rows[1]["zeta"] == "3.0"

    def test_mid_run_new_extras_migrate_too(self, tmp_path):
        path = tmp_path / "run.csv"
        with CSVReporter(path) as reporter:
            reporter.on_generation(_stats(gen=0))
            reporter.on_generation(_stats_extra(1, fallback_waves=2.0))
        import csv as _csv

        with open(path, newline="") as handle:
            rows = list(_csv.DictReader(handle))
        assert rows[0]["fallback_waves"] == "0"
        assert rows[1]["fallback_waves"] == "2.0"

    def test_stream_target_warns_loudly_once(self):
        buffer = io.StringIO()
        reporter = CSVReporter(buffer)
        reporter.on_generation(_stats(gen=0))
        with pytest.warns(RuntimeWarning, match="pack_eff"):
            reporter.on_generation(_stats_extra(1, pack_eff=0.5))
        # the same column does not warn twice
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            reporter.on_generation(_stats_extra(2, pack_eff=0.25))
        lines = buffer.getvalue().strip().splitlines()
        # rows stay aligned with the original header (column dropped)
        assert all(line.count(",") == lines[0].count(",") for line in lines)

    def test_resume_roundtrip_via_population(self, tmp_path):
        """End-to-end: run, checkpoint, resume with a CSV append —
        the resumed history extends the file without misalignment."""
        path = tmp_path / "history.csv"
        config = NEATConfig(num_inputs=2, num_outputs=1, population_size=8)

        def evaluate(genomes):
            for genome in genomes:
                genome.fitness = float(genome.key % 5)

        population = Population(config, seed=3)
        with CSVReporter(path) as reporter:
            population.reporters.add(reporter)
            population.run(evaluate, max_generations=2)
        checkpoint = tmp_path / "ckpt.json"
        save_checkpoint(population, checkpoint)

        resumed = load_checkpoint(checkpoint)
        resumed.stat_sources.append(lambda: {"pack_eff": 1.0})
        with CSVReporter(path, append=True) as reporter:
            resumed.reporters.add(reporter)
            resumed.run(evaluate, max_generations=2)

        import csv as _csv

        with open(path, newline="") as handle:
            rows = list(_csv.DictReader(handle))
        assert len(rows) == 4
        assert [row["pack_eff"] for row in rows] == ["0", "0", "1.0", "1.0"]
        assert rows[-1]["generation"] == str(resumed.generation - 1)
