"""Unit tests for the innovation tracker (historical markings)."""

from repro.neat.innovation import InnovationTracker


def test_same_connection_same_number():
    t = InnovationTracker(num_outputs=2)
    a = t.connection_innovation((-1, 0))
    b = t.connection_innovation((-2, 0))
    assert a != b
    assert t.connection_innovation((-1, 0)) == a  # stable on re-query


def test_innovation_numbers_are_sequential():
    t = InnovationTracker(num_outputs=1)
    nums = [t.connection_innovation((-1, i)) for i in range(5)]
    assert nums == [0, 1, 2, 3, 4]
    assert t.innovation_count == 5


def test_hidden_keys_start_after_outputs():
    t = InnovationTracker(num_outputs=3)
    assert t.node_for_split((-1, 0)) == 3
    assert t.node_for_split((-1, 1)) == 4


def test_same_split_same_node_within_generation():
    t = InnovationTracker(num_outputs=1)
    a = t.node_for_split((-1, 0))
    b = t.node_for_split((-1, 0))
    assert a == b


def test_split_table_reset_across_generations():
    t = InnovationTracker(num_outputs=1)
    a = t.node_for_split((-1, 0))
    t.reset_generation()
    b = t.node_for_split((-1, 0))
    assert b != a  # a new generation's split is a new node


def test_connection_innovations_survive_reset():
    t = InnovationTracker(num_outputs=1)
    a = t.connection_innovation((-1, 0))
    t.reset_generation()
    assert t.connection_innovation((-1, 0)) == a


def test_fresh_node_key_monotone():
    t = InnovationTracker(num_outputs=2)
    keys = [t.fresh_node_key() for _ in range(4)]
    assert keys == [2, 3, 4, 5]
    assert t.node_count == 6
