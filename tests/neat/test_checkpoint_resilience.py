"""Crash-safety tests for checkpointing.

The contract under test (docs/resilience.md): a save interrupted at any
byte offset must never prevent a restore when a rotated predecessor
exists, corruption is detected via the embedded SHA-256, and
``load_checkpoint`` falls back to the newest intact rotated sibling.
"""

import json
import warnings

import numpy as np
import pytest

from repro.neat.checkpoint import (
    ChecksumMismatchError,
    checkpoint_candidates,
    load_checkpoint,
    rotated_path,
    save_checkpoint,
)
from repro.neat.config import NEATConfig
from repro.neat.population import Population


def _evolved(generations=0, population_size=5, seed=1):
    cfg = NEATConfig(num_inputs=2, num_outputs=1, population_size=population_size)
    pop = Population(cfg, seed=seed)
    rng = np.random.default_rng(0)

    def evaluate(genomes):
        for g in genomes:
            g.fitness = float(rng.normal())

    for _ in range(generations):
        pop.advance(evaluate)
    return pop, evaluate


def _save_two_generations(tmp_path, keep=2):
    """Checkpoint at gen 1 then gen 2 with rotation; returns (path, pop)."""
    pop, evaluate = _evolved(generations=1)
    path = tmp_path / "ckpt.json"
    save_checkpoint(pop, path, keep=keep)
    pop.advance(evaluate)
    save_checkpoint(pop, path, keep=keep)
    return path, pop


class TestRotation:
    def test_keep_k_rotates_and_bounds(self, tmp_path):
        pop, evaluate = _evolved()
        path = tmp_path / "ckpt.json"
        for _ in range(5):
            save_checkpoint(pop, path, keep=3)
            pop.advance(evaluate)
        assert path.exists()
        assert rotated_path(path, 1).exists()
        assert rotated_path(path, 2).exists()
        assert not rotated_path(path, 3).exists()
        # newest first, one generation apart
        generations = [
            json.loads(p.read_text())["generation"]
            for p in checkpoint_candidates(path)
        ]
        assert generations == sorted(generations, reverse=True)
        assert generations[0] - generations[1] == 1

    def test_keep_one_keeps_no_siblings(self, tmp_path):
        pop, evaluate = _evolved()
        path = tmp_path / "ckpt.json"
        for _ in range(3):
            save_checkpoint(pop, path, keep=1)
            pop.advance(evaluate)
        assert path.exists()
        assert not rotated_path(path, 1).exists()

    def test_keep_zero_rejected(self, tmp_path):
        pop, _ = _evolved()
        with pytest.raises(ValueError, match="keep"):
            save_checkpoint(pop, tmp_path / "ckpt.json", keep=0)

    def test_no_tmp_file_left_behind(self, tmp_path):
        pop, _ = _evolved()
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path, keep=2)
        save_checkpoint(pop, path, keep=2)
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_rotated_sibling_is_previous_checkpoint(self, tmp_path):
        path, pop = _save_two_generations(tmp_path)
        previous = load_checkpoint(rotated_path(path, 1))
        assert previous.generation == pop.generation - 1


class TestCorruptionDetection:
    def test_bitflip_raises_checksum_mismatch(self, tmp_path):
        pop, _ = _evolved(generations=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        data = bytearray(path.read_bytes())
        # flip one bit inside the payload body (clear of the braces)
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises((ChecksumMismatchError, ValueError)):
            load_checkpoint(path, fallback=False)

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path):
        pop, _ = _evolved(generations=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        restored = load_checkpoint(path)
        assert restored.generation == pop.generation

    def test_non_object_json_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(Exception, match="not a JSON object"):
            load_checkpoint(path, fallback=False)


class TestFallback:
    def test_bitflipped_primary_falls_back(self, tmp_path):
        path, pop = _save_two_generations(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning, match="skipped corrupt checkpoint"):
            restored = load_checkpoint(path)
        assert restored.generation == pop.generation - 1

    def test_wrong_format_version_falls_back(self, tmp_path):
        from repro.neat.checkpoint import _payload_checksum

        path, pop = _save_two_generations(tmp_path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        payload["checksum"] = _payload_checksum(payload)
        path.write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="skipped corrupt checkpoint"):
            restored = load_checkpoint(path)
        assert restored.generation == pop.generation - 1

    def test_missing_primary_falls_back(self, tmp_path):
        path, pop = _save_two_generations(tmp_path)
        path.unlink()
        with pytest.warns(RuntimeWarning):
            restored = load_checkpoint(path)
        assert restored.generation == pop.generation - 1

    def test_fallback_disabled_raises(self, tmp_path):
        path, _ = _save_two_generations(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises((ChecksumMismatchError, ValueError)):
            load_checkpoint(path, fallback=False)

    def test_all_corrupt_raises_primary_error(self, tmp_path):
        path, _ = _save_two_generations(tmp_path)
        path.write_text("{ not json")
        rotated_path(path, 1).write_text("also { not json")
        with pytest.raises(json.JSONDecodeError):
            load_checkpoint(path)

    def test_fallback_skips_to_second_sibling(self, tmp_path):
        pop, evaluate = _evolved(generations=1)
        path = tmp_path / "ckpt.json"
        for _ in range(3):
            save_checkpoint(pop, path, keep=3)
            pop.advance(evaluate)
        path.write_text("{")
        rotated_path(path, 1).write_text("{")
        with pytest.warns(RuntimeWarning):
            restored = load_checkpoint(path)
        expected = json.loads(rotated_path(path, 2).read_text())["generation"]
        assert restored.generation == expected


class TestKillResilience:
    def test_truncation_at_any_offset_recovers(self, tmp_path):
        """A primary truncated at *any* byte offset restores from .1."""
        path, pop = _save_two_generations(tmp_path)
        data = path.read_bytes()
        previous_generation = pop.generation - 1
        # every offset in a dense prefix/suffix window plus a stride
        # through the middle: truncated JSON fails to parse regardless
        # of where the cut lands, so the stride loses no structure
        offsets = set(range(0, min(64, len(data))))
        offsets.update(range(max(0, len(data) - 64), len(data)))
        offsets.update(range(0, len(data), 97))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for offset in sorted(offsets):
                path.write_bytes(data[:offset])
                restored = load_checkpoint(path)
                assert restored.generation == previous_generation, offset
        # the untruncated file still loads as the newest generation
        path.write_bytes(data)
        assert load_checkpoint(path).generation == pop.generation

    def test_crash_before_rename_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A save killed before the final rename leaves the old file."""
        import repro.neat.checkpoint as ckpt

        pop, evaluate = _evolved(generations=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        old_generation = pop.generation
        pop.advance(evaluate)

        real_replace = ckpt.os.replace

        def dying_replace(src, dst):
            if str(dst) == str(path):
                raise OSError("simulated power cut")
            return real_replace(src, dst)

        monkeypatch.setattr(ckpt.os, "replace", dying_replace)
        with pytest.raises(OSError, match="power cut"):
            save_checkpoint(pop, path, keep=1)
        monkeypatch.undo()
        restored = load_checkpoint(path)
        assert restored.generation == old_generation

    def test_crash_during_tmp_write_preserves_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A save killed mid-write of the temp file leaves the old file."""
        import repro.neat.checkpoint as ckpt

        pop, evaluate = _evolved(generations=1)
        path = tmp_path / "ckpt.json"
        save_checkpoint(pop, path)
        old_generation = pop.generation
        pop.advance(evaluate)

        def dying_fsync(fd):
            raise OSError("simulated power cut")

        monkeypatch.setattr(ckpt.os, "fsync", dying_fsync)
        with pytest.raises(OSError, match="power cut"):
            save_checkpoint(pop, path, keep=1)
        monkeypatch.undo()
        restored = load_checkpoint(path)
        assert restored.generation == old_generation

    def test_restored_run_resumes_exactly(self, tmp_path):
        """Fallback restore is a *full* restore: the run resumes exactly."""
        path, pop = _save_two_generations(tmp_path)
        # corrupt the primary so the restore comes from the rotation
        path.write_text("garbage")
        with pytest.warns(RuntimeWarning):
            restored = load_checkpoint(path)
        reference = load_checkpoint(rotated_path(path, 1))

        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)

        def eval_a(genomes):
            for g in genomes:
                g.fitness = float(rng_a.normal())

        def eval_b(genomes):
            for g in genomes:
                g.fitness = float(rng_b.normal())

        for _ in range(2):
            best_a = restored.advance(eval_a)
            best_b = reference.advance(eval_b)
            assert best_a.fitness == best_b.fitness
            assert [g.key for g in restored.population] == [
                g.key for g in reference.population
            ]
