"""Unit tests for the activation/aggregation registries."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.neat.activations import activations, aggregations

FINITE = st.floats(
    min_value=-1e8, max_value=1e8, allow_nan=False, allow_infinity=False
)


class TestActivations:
    def test_known_names(self):
        for name in ("sigmoid", "tanh", "relu", "identity", "clamped"):
            assert name in activations

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            activations.get("swishish")

    def test_sigmoid_range_and_midpoint(self):
        f = activations.get("sigmoid")
        assert f(0.0) == pytest.approx(0.5)
        assert 0.0 < f(-100.0) < f(100.0) <= 1.0

    def test_relu(self):
        f = activations.get("relu")
        assert f(-3.0) == 0.0
        assert f(3.0) == 3.0

    def test_clamped(self):
        f = activations.get("clamped")
        assert f(5.0) == 1.0 and f(-5.0) == -1.0 and f(0.25) == 0.25

    def test_step(self):
        f = activations.get("step")
        assert f(0.1) == 1.0 and f(-0.1) == 0.0 and f(0.0) == 0.0

    def test_register_custom(self):
        activations.add("double", lambda x: 2 * x)
        assert activations.get("double")(3.0) == 6.0

    def test_register_non_callable(self):
        with pytest.raises(TypeError):
            activations.add("bad", 42)

    @given(FINITE)
    def test_all_activations_finite_everywhere(self, x):
        for name in activations.names():
            y = activations.get(name)(x)
            assert math.isfinite(y), f"{name}({x}) = {y}"

    @given(FINITE)
    def test_monotone_activations(self, x):
        for name in ("sigmoid", "tanh", "relu", "identity"):
            f = activations.get(name)
            assert f(x) <= f(x + 1.0) + 1e-12


class TestAggregations:
    def test_sum(self):
        assert aggregations.get("sum")([1.0, 2.0, 3.0]) == 6.0
        assert aggregations.get("sum")([]) == 0.0

    def test_mean(self):
        assert aggregations.get("mean")([2.0, 4.0]) == 3.0
        assert aggregations.get("mean")([]) == 0.0

    def test_max_min_defaults(self):
        assert aggregations.get("max")([]) == 0.0
        assert aggregations.get("min")([]) == 0.0
        assert aggregations.get("max")([-1.0, 2.0]) == 2.0

    def test_product(self):
        assert aggregations.get("product")([2.0, 3.0, 0.5]) == 3.0
        assert aggregations.get("product")([]) == 1.0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown aggregation"):
            aggregations.get("median")
