"""Tests for the vectorized network evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork
from repro.neat.vectorized import VectorizedNetwork, vectorize

from tests.conftest import evolved_genome
from tests.neat.test_network import _genome_from_edges


def _reference(seed=0, mutations=15, activation="tanh"):
    cfg = NEATConfig(
        num_inputs=4,
        num_outputs=3,
        default_activation=activation,
        activation_options=(activation,),
    )
    tracker = InnovationTracker(3)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(cfg, tracker, rng, mutations=mutations)
    return FeedForwardNetwork.create(genome, cfg), rng


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        activation=st.sampled_from(["tanh", "sigmoid", "relu", "identity"]),
    )
    def test_matches_reference(self, seed, activation):
        net, rng = _reference(seed=seed, activation=activation)
        fast = vectorize(net)
        for _ in range(4):
            x = rng.standard_normal(4)
            assert np.allclose(
                fast.activate(x), net.activate(x), atol=1e-12
            )

    def test_batch_matches_loop(self):
        net, rng = _reference(seed=3)
        fast = vectorize(net)
        batch = rng.standard_normal((16, 4))
        out = fast.activate_batch(batch)
        assert out.shape == (16, 3)
        for i in range(16):
            assert np.allclose(out[i], net.activate(batch[i]), atol=1e-12)

    def test_skip_connections_handled(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 2.0), (2, 0, 3.0), (-1, 0, 1.0)]  # direct skip
        genome = _genome_from_edges(cfg, edges)
        net = FeedForwardNetwork.create(genome, cfg)
        fast = vectorize(net)
        x = np.array([1.5])
        assert np.allclose(fast.activate(x), net.activate(x))

    def test_bias_only_output(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=2)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)], biases={1: 0.5})
        net = FeedForwardNetwork.create(genome, cfg)
        fast = vectorize(net)
        ref = net.activate(np.array([2.0]))
        assert np.allclose(fast.activate(np.array([2.0])), ref)


class TestValidation:
    def test_non_sum_aggregation_rejected(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)])
        genome.nodes[0].aggregation = "max"
        net = FeedForwardNetwork.create(genome, cfg)
        with pytest.raises(ValueError, match="sum"):
            VectorizedNetwork(net)

    def test_wrong_input_width_rejected(self):
        net, _ = _reference()
        fast = vectorize(net)
        with pytest.raises(ValueError, match="expected 4"):
            fast.activate_batch(np.zeros((2, 7)))

    def test_callable_interface(self):
        net, _ = _reference()
        fast = vectorize(net)
        assert fast(np.zeros(4)).shape == (3,)
