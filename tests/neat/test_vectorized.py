"""Tests for the vectorized network evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork
from repro.neat.vectorized import (
    _VECTOR_ACTIVATIONS,
    PopulationEvaluator,
    VectorizedNetwork,
    vectorize,
)

from tests.conftest import evolved_genome
from tests.neat.test_network import _genome_from_edges


def _reference(seed=0, mutations=15, activation="tanh"):
    cfg = NEATConfig(
        num_inputs=4,
        num_outputs=3,
        default_activation=activation,
        activation_options=(activation,),
    )
    tracker = InnovationTracker(3)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(cfg, tracker, rng, mutations=mutations)
    return FeedForwardNetwork.create(genome, cfg), rng


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        activation=st.sampled_from(["tanh", "sigmoid", "relu", "identity"]),
    )
    def test_matches_reference(self, seed, activation):
        net, rng = _reference(seed=seed, activation=activation)
        fast = vectorize(net)
        for _ in range(4):
            x = rng.standard_normal(4)
            assert np.allclose(
                fast.activate(x), net.activate(x), atol=1e-12
            )

    def test_batch_matches_loop(self):
        net, rng = _reference(seed=3)
        fast = vectorize(net)
        batch = rng.standard_normal((16, 4))
        out = fast.activate_batch(batch)
        assert out.shape == (16, 3)
        for i in range(16):
            assert np.allclose(out[i], net.activate(batch[i]), atol=1e-12)

    def test_skip_connections_handled(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 2.0), (2, 0, 3.0), (-1, 0, 1.0)]  # direct skip
        genome = _genome_from_edges(cfg, edges)
        net = FeedForwardNetwork.create(genome, cfg)
        fast = vectorize(net)
        x = np.array([1.5])
        assert np.allclose(fast.activate(x), net.activate(x))

    def test_bias_only_output(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=2)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)], biases={1: 0.5})
        net = FeedForwardNetwork.create(genome, cfg)
        fast = vectorize(net)
        ref = net.activate(np.array([2.0]))
        assert np.allclose(fast.activate(np.array([2.0])), ref)


class TestBitwiseParity:
    """The fast path's headline guarantee: not close — *equal*.

    ``cpu-fast``'s claim of a bit-identical fitness trajectory rests on
    the vectorized forward pass producing the same 64-bit floats as the
    interpreted one, for every supported activation.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        activation=st.sampled_from(sorted(_VECTOR_ACTIVATIONS)),
    )
    def test_activate_batch_bit_for_bit(self, seed, activation):
        net, rng = _reference(seed=seed, activation=activation)
        fast = vectorize(net)
        batch = rng.standard_normal((8, 4)) * 3.0
        out = fast.activate_batch(batch)
        expected = np.stack([net.activate(batch[i]) for i in range(8)])
        assert out.tobytes() == expected.tobytes()

    def test_mixed_activations_bit_for_bit(self):
        options = tuple(sorted(_VECTOR_ACTIVATIONS))
        cfg = NEATConfig(
            num_inputs=4,
            num_outputs=3,
            default_activation="tanh",
            activation_options=options,
            activation_mutate_rate=0.5,
        )
        tracker = InnovationTracker(3)
        rng = np.random.default_rng(11)
        for trial in range(10):
            genome = evolved_genome(cfg, tracker, rng, mutations=12, key=trial)
            net = FeedForwardNetwork.create(genome, cfg)
            fast = vectorize(net)
            for _ in range(4):
                x = rng.standard_normal(4) * 2.0
                assert fast.activate(x).tobytes() == net.activate(x).tobytes()

    def test_population_evaluator_bit_for_bit(self):
        nets = [_reference(seed=s, mutations=10)[0] for s in range(12)]
        fast = [vectorize(n) for n in nets]
        evaluator = PopulationEvaluator(fast)
        rng = np.random.default_rng(0)
        alive = list(range(12))
        while alive:
            obs = {m: rng.standard_normal(4) for m in alive}
            outputs = evaluator.infer(obs)
            assert sorted(outputs) == alive
            for m in alive:
                expected = nets[m].activate(obs[m])
                assert outputs[m].tobytes() == expected.tobytes()
            # shrink the alive set so the evaluator's lazy rebuild and
            # post-rebuild indexing are both exercised
            alive = alive[: len(alive) - 3]
        assert evaluator.rebuilds >= 1


class TestValidation:
    def test_non_sum_aggregation_rejected(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        genome = _genome_from_edges(cfg, [(-1, 0, 1.0)])
        genome.nodes[0].aggregation = "max"
        net = FeedForwardNetwork.create(genome, cfg)
        with pytest.raises(ValueError, match="sum"):
            VectorizedNetwork(net)

    def test_wrong_input_width_rejected(self):
        net, _ = _reference()
        fast = vectorize(net)
        with pytest.raises(ValueError, match="expected 4"):
            fast.activate_batch(np.zeros((2, 7)))

    def test_callable_interface(self):
        net, _ = _reference()
        fast = vectorize(net)
        assert fast(np.zeros(4)).shape == (3,)
