"""Unit and property tests for genome validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.validate import (
    GenomeValidationError,
    iter_violations,
    validate_genome,
)

from tests.conftest import evolved_genome


@pytest.fixture
def cfg():
    return NEATConfig(num_inputs=2, num_outputs=1)


def _valid_genome(cfg):
    genome = Genome(key=0)
    genome.nodes[0] = NodeGene(0, 0.0, "tanh", "sum")
    genome.connections[(-1, 0)] = ConnectionGene((-1, 0), 0.5, True, 0)
    return genome


class TestValid:
    def test_valid_genome_passes(self, cfg):
        validate_genome(_valid_genome(cfg), cfg)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5_000), mutations=st.integers(0, 25))
    def test_evolved_genomes_always_valid(self, seed, mutations):
        """The whole mutation pipeline preserves every invariant."""
        config = NEATConfig(num_inputs=3, num_outputs=2)
        tracker = InnovationTracker(2)
        rng = np.random.default_rng(seed)
        genome = evolved_genome(config, tracker, rng, mutations=mutations)
        validate_genome(genome, config)


class TestViolations:
    def test_missing_output(self, cfg):
        genome = _valid_genome(cfg)
        del genome.nodes[0]
        with pytest.raises(GenomeValidationError, match="missing output"):
            validate_genome(genome, cfg)

    def test_connection_into_input(self, cfg):
        genome = _valid_genome(cfg)
        genome.connections[(0, -1)] = ConnectionGene((0, -1), 1.0, True, 1)
        assert any(
            "writes into input" in v for v in iter_violations(genome, cfg)
        )

    def test_unknown_input_key(self, cfg):
        genome = _valid_genome(cfg)
        genome.connections[(-9, 0)] = ConnectionGene((-9, 0), 1.0, True, 1)
        assert any(
            "unknown input" in v for v in iter_violations(genome, cfg)
        )

    def test_dangling_node_reference(self, cfg):
        genome = _valid_genome(cfg)
        genome.connections[(7, 0)] = ConnectionGene((7, 0), 1.0, True, 1)
        assert any(
            "reads missing node" in v for v in iter_violations(genome, cfg)
        )

    def test_cycle_detected(self, cfg):
        genome = _valid_genome(cfg)
        genome.nodes[1] = NodeGene(1, 0.0, "tanh", "sum")
        genome.nodes[2] = NodeGene(2, 0.0, "tanh", "sum")
        genome.connections[(1, 2)] = ConnectionGene((1, 2), 1.0, True, 1)
        genome.connections[(2, 1)] = ConnectionGene((2, 1), 1.0, True, 2)
        assert any("cycle" in v for v in iter_violations(genome, cfg))

    def test_disabled_cycle_is_fine(self, cfg):
        genome = _valid_genome(cfg)
        genome.nodes[1] = NodeGene(1, 0.0, "tanh", "sum")
        genome.nodes[2] = NodeGene(2, 0.0, "tanh", "sum")
        genome.connections[(1, 2)] = ConnectionGene((1, 2), 1.0, True, 1)
        genome.connections[(2, 1)] = ConnectionGene((2, 1), 1.0, False, 2)
        assert not any("cycle" in v for v in iter_violations(genome, cfg))

    def test_duplicate_innovations(self, cfg):
        genome = _valid_genome(cfg)
        genome.connections[(-2, 0)] = ConnectionGene((-2, 0), 1.0, True, 0)
        assert any(
            "duplicate innovation" in v for v in iter_violations(genome, cfg)
        )

    def test_non_finite_weight(self, cfg):
        genome = _valid_genome(cfg)
        genome.connections[(-1, 0)].weight = float("nan")
        assert any(
            "non-finite weight" in v for v in iter_violations(genome, cfg)
        )

    def test_out_of_bounds_bias(self, cfg):
        genome = _valid_genome(cfg)
        genome.nodes[0].bias = cfg.bias_max * 10
        assert any(
            "outside configured bounds" in v
            for v in iter_violations(genome, cfg)
        )

    def test_wrong_storage_key(self, cfg):
        genome = _valid_genome(cfg)
        gene = ConnectionGene((-2, 0), 1.0, True, 3)
        genome.connections[(-1, 0)] = gene  # stored under the wrong key
        assert any(
            "wrong key" in v for v in iter_violations(genome, cfg)
        )


class TestInterspeciesCrossover:
    def test_rate_validated(self):
        with pytest.raises(ValueError, match="interspecies"):
            NEATConfig(interspecies_crossover_rate=1.5)

    def test_reproduction_with_interspecies_mating(self):
        """High interspecies rate exercises the cross-pool path."""
        from repro.neat.population import Population

        cfg = NEATConfig(
            num_inputs=2,
            num_outputs=1,
            population_size=20,
            crossover_rate=1.0,
            interspecies_crossover_rate=1.0,
            compatibility_threshold=1.0,  # encourage several species
        )
        pop = Population(cfg, seed=2)
        rng = np.random.default_rng(0)

        def evaluate(genomes):
            for g in genomes:
                g.fitness = float(rng.normal())

        result = pop.run(evaluate, max_generations=4)
        assert result.generations == 4
        for genome in pop.population:
            validate_genome(genome, cfg)
