"""Unit tests for node and connection genes."""

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene


def test_node_gene_copy_is_independent():
    a = NodeGene(1, 0.5, "tanh", "sum")
    b = a.copy()
    b.bias = 2.0
    assert a.bias == 0.5


def test_node_gene_distance():
    a = NodeGene(1, 0.5, "tanh", "sum")
    b = NodeGene(1, 1.5, "tanh", "sum")
    assert a.distance(b) == 1.0
    c = NodeGene(1, 0.5, "relu", "max")
    assert a.distance(c) == 2.0  # activation + aggregation mismatch
    assert a.distance(a) == 0.0


def test_connection_gene_properties():
    c = ConnectionGene((-1, 0), 0.3, True, 7)
    assert c.in_node == -1 and c.out_node == 0
    assert c.innovation == 7


def test_connection_gene_distance():
    a = ConnectionGene((-1, 0), 0.5, True, 0)
    b = ConnectionGene((-1, 0), 1.0, False, 0)
    assert a.distance(b) == 1.5  # |dw| + enabled mismatch


def test_node_mutation_respects_bounds():
    cfg = NEATConfig(bias_min=-2.0, bias_max=2.0, bias_mutate_rate=1.0)
    rng = np.random.default_rng(0)
    gene = NodeGene(0, 1.9, "tanh", "sum")
    for _ in range(100):
        gene.mutate(cfg, rng)
        assert cfg.bias_min <= gene.bias <= cfg.bias_max


def test_weight_mutation_respects_bounds():
    cfg = NEATConfig(weight_min=-1.0, weight_max=1.0, weight_mutate_rate=1.0)
    rng = np.random.default_rng(0)
    gene = ConnectionGene((-1, 0), 0.9, True, 0)
    for _ in range(100):
        gene.mutate(cfg, rng)
        assert cfg.weight_min <= gene.weight <= cfg.weight_max


def test_activation_mutation_draws_from_options():
    cfg = NEATConfig(
        activation_options=("tanh", "relu", "sigmoid"),
        activation_mutate_rate=1.0,
        bias_mutate_rate=0.0,
    )
    rng = np.random.default_rng(1)
    gene = NodeGene(0, 0.0, "tanh", "sum")
    seen = set()
    for _ in range(50):
        gene.mutate(cfg, rng)
        seen.add(gene.activation)
    assert seen <= {"tanh", "relu", "sigmoid"}
    assert len(seen) > 1


def test_random_factories_use_defaults():
    cfg = NEATConfig(default_activation="relu", activation_options=("relu",))
    rng = np.random.default_rng(2)
    node = NodeGene.random(5, cfg, rng)
    assert node.key == 5 and node.activation == "relu"
    conn = ConnectionGene.random((-1, 5), 3, cfg, rng)
    assert conn.enabled and conn.innovation == 3
