"""Unit tests for text rendering."""

import numpy as np

from repro.analysis.render import render_histogram, render_network, sparkline
from repro.neat.config import NEATConfig
from repro.neat.network import FeedForwardNetwork

from tests.neat.test_network import _genome_from_edges


def _simple_network():
    cfg = NEATConfig(num_inputs=2, num_outputs=1)
    edges = [(-1, 2, 1.0), (-2, 2, 1.0), (2, 0, 1.0), (-1, 0, 1.0)]
    return FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)


class TestRenderNetwork:
    def test_structure(self):
        text = render_network(_simple_network())
        lines = text.splitlines()
        assert lines[0].startswith("inputs : [-1] [-2]")
        assert "2(<2)" in text  # hidden node with fan-in 2
        assert "0(<2)" in text  # output consumes hidden + skip input
        assert "density" in lines[-1]

    def test_output_layer_labelled(self):
        text = render_network(_simple_network())
        assert "outputs: " in text

    def test_width_truncation(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=30)
        edges = [(-1, o, 1.0) for o in range(30)]
        net = FeedForwardNetwork.create(_genome_from_edges(cfg, edges), cfg)
        text = render_network(net, max_width=40)
        assert all(len(line) <= 40 for line in text.splitlines())
        assert "..." in text


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_resampling_to_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] != line[-1]

    def test_extremes_hit_min_max_blocks(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == "▁" and line[1] == "█"


class TestRenderHistogram:
    def test_empty(self):
        assert render_histogram({}) == "(empty histogram)"

    def test_bars_scale_with_counts(self):
        text = render_histogram({1: 10, 2: 5, 3: 1}, max_bar=10)
        lines = text.splitlines()
        bar_lengths = [line.count("#") for line in lines[1:]]
        assert bar_lengths[0] > bar_lengths[1] > bar_lengths[2] >= 1

    def test_sorted_by_key(self):
        text = render_histogram({3: 1, 1: 1, 2: 1})
        keys = [int(line.split()[0]) for line in text.splitlines()[1:]]
        assert keys == [1, 2, 3]


class TestToDot:
    def test_structure(self):
        from repro.analysis.render import to_dot

        dot = to_dot(_simple_network(), name="champ")
        assert dot.startswith("digraph champ {")
        assert dot.rstrip().endswith("}")
        assert '"-1" [shape=box' in dot
        assert '"0" [shape=doublecircle' in dot
        assert '"-1" -> "2"' in dot  # an actual evolved edge
        assert "label=\"1.00\"" in dot  # weight label

    def test_hidden_nodes_carry_activation(self):
        from repro.analysis.render import to_dot

        dot = to_dot(_simple_network())
        assert "identity" in dot  # the test genome's activation

    def test_edge_count_matches_network(self):
        from repro.analysis.render import to_dot

        net = _simple_network()
        dot = to_dot(net)
        assert dot.count("->") == net.num_macs
