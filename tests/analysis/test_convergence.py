"""Unit tests for convergence analysis (the Fig 2 machinery)."""

import pytest

from repro.analysis.convergence import (
    FitnessTrace,
    normalize_fitness,
    random_policy_baseline,
    solve_summary,
)


class TestRandomBaseline:
    def test_deterministic(self):
        a = random_policy_baseline("cartpole", seed=1)
        b = random_policy_baseline("cartpole", seed=1)
        assert a == b

    def test_cartpole_random_is_weak(self):
        baseline = random_policy_baseline("cartpole")
        assert baseline < 100  # far from the 475 requirement

    def test_pendulum_random_is_negative(self):
        assert random_policy_baseline("pendulum") < -200


class TestNormalizeFitness:
    def test_endpoints(self):
        assert normalize_fitness(0.0, 0.0, 100.0) == 0.0
        assert normalize_fitness(100.0, 0.0, 100.0) == 1.0
        assert normalize_fitness(50.0, 0.0, 100.0) == 0.5

    def test_clipping(self):
        assert normalize_fitness(200.0, 0.0, 100.0) == 1.0
        assert normalize_fitness(-50.0, 0.0, 100.0) == 0.0

    def test_negative_scale(self):
        # pendulum-style: baseline -1200, required -200
        assert normalize_fitness(-700.0, -1200.0, -200.0) == 0.5

    def test_degenerate_scale(self):
        assert normalize_fitness(5.0, 1.0, 1.0) == 1.0
        assert normalize_fitness(0.5, 1.0, 1.0) == 0.0


class TestFitnessTrace:
    def test_best_so_far_monotone(self):
        trace = FitnessTrace("neat", "cartpole")
        for t, f in [(0, 10.0), (1, 5.0), (2, 30.0), (3, 20.0)]:
            trace.record(t, f)
        assert trace.best_so_far() == [10.0, 10.0, 30.0, 30.0]
        assert trace.best_fitness == 30.0

    def test_empty_trace(self):
        trace = FitnessTrace("neat", "cartpole")
        assert trace.best_fitness == float("-inf")
        assert trace.best_so_far() == []

    def test_normalized_with_explicit_baseline(self):
        trace = FitnessTrace("neat", "cartpole")  # required 475
        trace.record(0, 0.0)
        trace.record(1, 475.0)
        normalized = trace.normalized(baseline=0.0)
        assert normalized == [0.0, 1.0]

    def test_achieved(self):
        trace = FitnessTrace("neat", "cartpole")
        trace.record(0, 500.0)
        assert trace.achieved
        weak = FitnessTrace("a2c", "cartpole")
        weak.record(0, 100.0)
        assert not weak.achieved


class TestSolveSummary:
    def test_counts_per_algorithm(self):
        solved = FitnessTrace("neat", "cartpole")
        solved.record(0, 500.0)
        unsolved = FitnessTrace("neat", "cartpole")
        unsolved.record(0, 50.0)
        other = FitnessTrace("a2c", "cartpole")
        other.record(0, 20.0)
        summary = solve_summary([solved, unsolved, other])
        assert summary["neat"]["tasks"] == 2
        assert summary["neat"]["solved"] == 1
        assert summary["a2c"]["tasks"] == 1
        assert summary["a2c"]["solved"] == 0
        assert 0.0 <= summary["neat"]["mean_normalized"] <= 1.0
