"""Unit tests for topology statistics (Fig 4 machinery)."""

import numpy as np
import pytest

from repro.analysis.topology import (
    DensityTrace,
    degree_distribution,
    layer_size_histogram,
    population_density,
    population_topology_stats,
)
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker

from tests.conftest import evolved_genome
from tests.neat.test_network import _genome_from_edges


def _population(n=8, mutations=8, seed=0):
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    return cfg, [
        evolved_genome(cfg, tracker, rng, mutations=mutations, key=i)
        for i in range(n)
    ]


def test_degree_distribution_hand_example():
    cfg = NEATConfig(num_inputs=2, num_outputs=1)
    # -1 -> 0, -2 -> 0: output degree 2, each input degree 1
    genome = _genome_from_edges(cfg, [(-1, 0, 1.0), (-2, 0, 1.0)])
    hist = degree_distribution([genome], cfg)
    assert hist[2] == 1  # the output node
    assert hist[1] == 2  # the two inputs


def test_layer_size_histogram_hand_example():
    cfg = NEATConfig(num_inputs=2, num_outputs=2)
    genome = _genome_from_edges(
        cfg, [(-1, 4, 1.0), (4, 0, 1.0), (-2, 1, 1.0)]
    )
    hist = layer_size_histogram([genome], cfg)
    # layers: [4, 1] then [0]? ASAP: node 4 depth1, output 0 depth2,
    # output 1 depth1 -> sizes {2: 1, 1: 1}
    assert hist == {2: 1, 1: 1}


def test_population_density_matches_single_network():
    cfg = NEATConfig(num_inputs=3, num_outputs=3)
    genome = _genome_from_edges(
        cfg, [(-1, 0, 1.0), (-2, 1, 1.0), (-3, 2, 1.0)]
    )
    assert population_density([genome], cfg) == pytest.approx(1 / 3)


def test_population_density_requires_genomes():
    cfg = NEATConfig(num_inputs=2, num_outputs=1)
    with pytest.raises(ValueError):
        population_density([], cfg)


def test_density_trace_records_per_generation():
    cfg, pop = _population()
    trace = DensityTrace(env_name="cartpole")
    trace.record(pop, cfg)
    trace.record(pop, cfg)
    assert trace.generations == 2
    assert trace.densities[0] == trace.densities[1]


def test_population_topology_stats():
    cfg, pop = _population()
    stats = population_topology_stats(pop, cfg)
    assert stats.mean_nodes >= cfg.num_inputs + cfg.num_outputs
    assert stats.mean_connections > 0
    assert stats.mean_layers >= 1
    assert stats.max_fan_in >= 1
    assert sum(stats.layer_size_histogram.values()) > 0
    assert sum(stats.degree_histogram.values()) > 0


def test_stats_reflect_structural_growth():
    cfg, small_pop = _population(mutations=0)
    _, big_pop = _population(mutations=25, seed=1)
    small = population_topology_stats(small_pop, cfg)
    big = population_topology_stats(big_pop, cfg)
    assert big.mean_nodes >= small.mean_nodes
