"""Unit tests for complexity rows (Table V) and timing profiles."""

import numpy as np
import pytest

from repro.analysis.complexity import (
    neat_average_complexity,
    table5_row,
)
from repro.analysis.timing_profile import (
    neat_profile,
    normalized_platform_breakdown,
    rl_profile,
)
from repro.hw.cpu_model import PhaseTimes
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.rl.base import TimeBreakdown

from tests.conftest import evolved_genome


def _populations(generations=3, n=5, seed=0):
    cfg = NEATConfig(num_inputs=4, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    pops = []
    for g in range(generations):
        pops.append(
            [
                evolved_genome(cfg, tracker, rng, mutations=2 * g, key=10 * g + i)
                for i in range(n)
            ]
        )
    return cfg, pops


class TestComplexity:
    def test_average_over_generations(self):
        cfg, pops = _populations()
        nodes, conns = neat_average_complexity(pops, cfg)
        assert nodes >= 6  # 4 inputs + 2 outputs minimum
        assert conns > 0

    def test_requires_genomes(self):
        cfg, _ = _populations()
        with pytest.raises(ValueError):
            neat_average_complexity([[]], cfg)

    def test_table5_row_shape(self):
        cfg, pops = _populations()
        row = table5_row("cartpole", 4, 2, pops, cfg)
        assert row.small_nodes == 134
        assert row.small_connections == 4480
        assert row.large_connections > row.small_connections
        # the paper's headline: evolved nets are orders smaller
        assert row.neat_avg_connections < row.small_connections / 10
        assert row.small_to_neat_connection_ratio > 10


class TestProfiles:
    def test_neat_profile_groups_env_into_evaluate(self):
        times = PhaseTimes(evaluate=8.0, env=2.0, createnet=0.5, evolve=0.5)
        profile = neat_profile(times)
        assert profile["evaluate"] == pytest.approx(10.0 / 11.0)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_rl_profile(self):
        times = TimeBreakdown(forward=3.0, env=1.0, training=6.0)
        profile = rl_profile(times)
        assert profile["training"] == pytest.approx(0.6)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_normalized_breakdown_baseline_sums_to_one(self):
        platforms = {
            "cpu": PhaseTimes(evaluate=9.0, env=0.5, createnet=0.25, evolve=0.25),
            "inax": PhaseTimes(evaluate=0.1, env=0.5, createnet=0.25, evolve=0.25),
        }
        norm = normalized_platform_breakdown(platforms, baseline="cpu")
        assert sum(norm["cpu"].values()) == pytest.approx(1.0)
        # the accelerated platform's bars sum to 1/speedup
        speedup = 10.0 / 1.1
        assert sum(norm["inax"].values()) == pytest.approx(1 / speedup)

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            normalized_platform_breakdown({"cpu": PhaseTimes()}, baseline="gpu")

    def test_zero_time_profiles(self):
        assert sum(neat_profile(PhaseTimes()).values()) == 0.0
        assert sum(rl_profile(TimeBreakdown()).values()) == 0.0
