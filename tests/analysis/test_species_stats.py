"""Unit tests for speciation-dynamics analysis."""

import numpy as np
import pytest

from repro.analysis.species_stats import SpeciesHistory, SpeciesSnapshot
from repro.neat.config import NEATConfig
from repro.neat.population import Population


def _run_with_history(generations=5, seed=0, threshold=3.0):
    cfg = NEATConfig(
        num_inputs=3,
        num_outputs=2,
        population_size=30,
        compatibility_threshold=threshold,
    )
    pop = Population(cfg, seed=seed)
    history = SpeciesHistory()
    rng = np.random.default_rng(seed)

    def evaluate(genomes):
        for g in genomes:
            g.fitness = float(rng.normal())

    for _ in range(generations):
        # record the partition of the population about to be evaluated
        pop.advance(evaluate)
        history.record(pop)
    return pop, history


class TestSpeciesHistory:
    def test_snapshot_counts_match_population(self):
        pop, history = _run_with_history(generations=1)
        snap = history.snapshots[0]
        assert sum(snap.sizes.values()) == len(pop.population)

    def test_generations_counted(self):
        _, history = _run_with_history(generations=4)
        assert history.generations == 4

    def test_lifetimes_bounded_by_generations(self):
        _, history = _run_with_history(generations=6)
        for lifetime in history.lifetimes().values():
            assert 1 <= lifetime <= 6

    def test_births_and_deaths_bookkeeping(self):
        _, history = _run_with_history(generations=6, threshold=1.2)
        births, deaths = history.births_and_deaths()
        assert len(births) == len(deaths) == 6
        # conservation: species seen == total births
        assert sum(births) == len(history.species_seen())

    def test_turnover_in_unit_interval(self):
        _, history = _run_with_history(generations=8, threshold=1.2)
        assert 0.0 <= history.turnover() <= 1.0

    def test_summary_fields(self):
        _, history = _run_with_history(generations=5)
        summary = history.summary()
        for key in (
            "generations",
            "species_seen",
            "mean_species_alive",
            "mean_lifetime",
            "max_lifetime",
            "turnover",
        ):
            assert key in summary
        assert summary["generations"] == 5.0
        assert summary["max_lifetime"] >= summary["mean_lifetime"]

    def test_empty_history(self):
        history = SpeciesHistory()
        assert history.mean_species_count() == 0.0
        assert history.turnover() == 0.0
        assert history.summary()["species_seen"] == 0.0

    def test_tight_threshold_more_species(self):
        _, loose = _run_with_history(generations=5, threshold=5.0, seed=3)
        _, tight = _run_with_history(generations=5, threshold=0.8, seed=3)
        assert (
            tight.summary()["mean_species_alive"]
            >= loose.summary()["mean_species_alive"]
        )
