"""Tests for lowering dense MLP policies onto INAX (the regular path)."""

import numpy as np
import pytest

from repro.inax.compiler import compile_mlp
from repro.inax.pu import ProcessingUnit
from repro.rl.nn import MLP


def _mlp(sizes=(3, 5, 2), seed=0):
    return MLP(list(sizes), rng=np.random.default_rng(seed))


class TestStructure:
    def test_dense_shape(self):
        hw = compile_mlp(_mlp())
        assert hw.num_inputs == 3
        assert hw.num_outputs == 2
        assert hw.layer_sizes() == [3, 5, 2]
        # fully connected: 3*5 + 5*2 connections
        assert hw.num_connections == 15 + 10

    def test_density_is_one(self):
        hw = compile_mlp(_mlp())
        dense = sum(
            a * b for a, b in zip(hw.layer_sizes(), hw.layer_sizes()[1:])
        )
        assert hw.num_connections == dense

    def test_output_keys_in_last_layer(self):
        hw = compile_mlp(_mlp((4, 8, 8, 3)))
        last = {plan.key for plan in hw.layers[-1]}
        assert last == {0, 1, 2}


class TestEquivalence:
    @pytest.mark.parametrize("sizes", [(3, 5, 2), (4, 8, 8, 3), (2, 2)])
    def test_pu_matches_mlp_predict(self, sizes):
        mlp = _mlp(sizes, seed=3)
        hw = compile_mlp(mlp)
        pu = ProcessingUnit(num_pes=2)
        pu.load(hw)
        rng = np.random.default_rng(0)
        for _ in range(4):
            x = rng.standard_normal(sizes[0])
            expected = mlp.predict(x[None, :])[0]
            # the MLP applies tanh on hidden layers, linear output —
            # exactly how compile_mlp lowers it.  MACs accumulate in a
            # different order (fsum vs dot), so allow float slack.
            got, _ = pu.infer(x)
            assert np.allclose(got, expected, atol=1e-9), sizes

    def test_relu_mlp(self):
        mlp = MLP([3, 6, 2], activation="relu", rng=np.random.default_rng(1))
        hw = compile_mlp(mlp, activation="relu")
        pu = ProcessingUnit(num_pes=3)
        pu.load(hw)
        x = np.array([0.5, -0.5, 1.0])
        assert np.allclose(
            pu.infer(x)[0], mlp.predict(x[None, :])[0], atol=1e-9
        )


class TestRegularWorkloadOnDevice:
    def test_es_population_evaluates_on_inax(self):
        """An ES generation (same topology, different weights) runs as
        a wave of regular individuals on the device."""
        from repro.inax.accelerator import INAX, INAXConfig

        candidates = [_mlp((3, 4, 2), seed=s) for s in range(4)]
        configs = [compile_mlp(m) for m in candidates]
        device = INAX(INAXConfig(num_pus=4, num_pes_per_pu=2))
        device.begin_wave(configs)
        x = np.ones(3)
        outputs = device.step({i: x for i in range(4)})
        device.end_wave()
        for i, mlp in enumerate(candidates):
            assert np.allclose(
                outputs[i], mlp.predict(x[None, :])[0], atol=1e-9
            )
