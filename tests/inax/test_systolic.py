"""Unit tests for the systolic-array baseline (the Fig 11 comparison)."""

import numpy as np
import pytest

from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.compiler import compile_genome
from repro.inax.systolic import (
    SACosts,
    dense_counterpart_widths,
    sa_pe_active_cycles,
    sa_step_cycles,
    schedule_generation_sa,
)
from repro.inax.synthetic import synthetic_population
from repro.neat.config import NEATConfig

from tests.neat.test_network import _genome_from_edges


class TestDenseCounterpart:
    def test_no_skip_links_no_dummies(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1)
        edges = [(-1, 2, 1.0), (-2, 2, 1.0), (2, 0, 1.0)]
        hw = compile_genome(_genome_from_edges(cfg, edges), cfg)
        assert dense_counterpart_widths(hw) == [2, 1, 1]

    def test_skip_link_inserts_dummy(self):
        # Fig 4(d): input used both at layer 1 and directly by the output
        # (layer 2) forces a pass-through dummy in layer 1
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [(-1, 2, 1.0), (2, 0, 1.0), (-1, 0, 1.0)]
        hw = compile_genome(_genome_from_edges(cfg, edges), cfg)
        assert dense_counterpart_widths(hw) == [1, 2, 1]  # node 2 + dummy

    def test_deep_skip_creates_dummy_chain(self):
        cfg = NEATConfig(num_inputs=1, num_outputs=1)
        edges = [
            (-1, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 0, 1.0),
            (-1, 0, 1.0),  # skips three layers -> dummies in 1, 2, 3
        ]
        hw = compile_genome(_genome_from_edges(cfg, edges), cfg)
        assert dense_counterpart_widths(hw) == [1, 2, 2, 2, 1]


class TestSACycles:
    def test_closed_form_single_layer(self):
        cfg = NEATConfig(num_inputs=3, num_outputs=2)
        edges = [(-1, 0, 1.0), (-2, 0, 1.0), (-3, 1, 1.0)]
        hw = compile_genome(_genome_from_edges(cfg, edges), cfg)
        costs = SACosts()
        # widths [3, 2]: one pass on 2 PEs: 3 inputs + 2 fill + sync + load
        expected = (
            costs.input_load_cycles
            + 1 * (3 + 2)
            + costs.layer_sync_cycles
        )
        assert sa_step_cycles(hw, num_pes=2, costs=costs) == expected

    def test_invalid_pe_count(self):
        pop = synthetic_population(num_individuals=1, seed=0)
        with pytest.raises(ValueError):
            sa_step_cycles(pop[0], num_pes=0)

    def test_zero_filling_penalty(self):
        # sparse and dense versions of the same shape cost the SA the
        # same (it streams zeros), while INAX charges only real MACs
        cfg = NEATConfig(num_inputs=4, num_outputs=2)
        sparse_edges = [(-1, 0, 1.0), (-2, 1, 1.0)]
        dense_edges = [
            (i, o, 1.0) for i in (-1, -2, -3, -4) for o in (0, 1)
        ]
        sparse = compile_genome(_genome_from_edges(cfg, sparse_edges), cfg)
        dense = compile_genome(_genome_from_edges(cfg, dense_edges), cfg)
        assert sa_step_cycles(sparse, 2) == sa_step_cycles(dense, 2)
        assert sa_pe_active_cycles(sparse) < sa_pe_active_cycles(dense)

    def test_more_pes_help_up_to_width(self):
        pop = synthetic_population(num_individuals=1, num_hidden=20, seed=1)
        previous = float("inf")
        for num_pes in (1, 2, 4, 8, 16):
            cycles = sa_step_cycles(pop[0], num_pes)
            # SA throughput improves with PEs, but fill/drain grows; it
            # must at least improve from 1 PE to the layer width
            previous = min(previous, cycles)
        assert previous < sa_step_cycles(pop[0], 1)


class TestINAXvsSA:
    def test_inax_faster_on_irregular_networks(self):
        # the headline Fig 11 result: INAX beats the SA on evolved nets
        pop = synthetic_population(num_individuals=20, seed=2)
        lengths = [10] * 20
        cfg = INAXConfig(num_pus=5, num_pes_per_pu=4)
        inax = schedule_generation(cfg, pop, lengths)
        sa = schedule_generation_sa(cfg, pop, lengths)
        assert sa.total_cycles > inax.total_cycles
        # the paper reports 3x..12.6x
        ratio = sa.total_cycles / inax.total_cycles
        assert 1.5 < ratio < 40

    def test_sa_uses_same_wave_schedule(self):
        pop = synthetic_population(num_individuals=10, seed=3)
        lengths = [5] * 10
        cfg = INAXConfig(num_pus=3, num_pes_per_pu=2)
        sa = schedule_generation_sa(cfg, pop, lengths)
        inax = schedule_generation(cfg, pop, lengths)
        assert sa.steps == inax.steps
        assert sa.individuals == inax.individuals
        assert sa.setup_cycles == inax.setup_cycles  # same weight channel

    def test_sa_utilization_below_inax(self):
        pop = synthetic_population(num_individuals=10, seed=4)
        cfg = INAXConfig(num_pus=5, num_pes_per_pu=2)
        sa = schedule_generation_sa(cfg, pop, [10] * 10)
        inax = schedule_generation(cfg, pop, [10] * 10)
        assert sa.u_pe < inax.u_pe
