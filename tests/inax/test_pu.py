"""Unit and property tests for the PU model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inax.compiler import compile_genome
from repro.inax.pe import PECosts
from repro.inax.pu import BufferOverflowError, ProcessingUnit, PUCosts
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork

from tests.conftest import evolved_genome


def _setup(seed=0, mutations=12, num_pes=2):
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(cfg, tracker, rng, mutations=mutations)
    hw = compile_genome(genome, cfg)
    pu = ProcessingUnit(num_pes=num_pes)
    return cfg, genome, hw, pu, rng


class TestLoad:
    def test_load_returns_decode_cycles(self):
        _, _, hw, pu, _ = _setup()
        cycles = pu.load(hw)
        assert cycles == hw.config_words  # 1 cycle/word default
        assert pu.loaded is hw

    def test_weight_buffer_overflow(self):
        _, _, hw, _, _ = _setup()
        pu = ProcessingUnit(num_pes=1, weight_buffer_capacity=1)
        with pytest.raises(BufferOverflowError, match="weight buffer"):
            pu.load(hw)

    def test_value_buffer_overflow(self):
        _, _, hw, _, _ = _setup()
        pu = ProcessingUnit(num_pes=1, value_buffer_capacity=1)
        with pytest.raises(BufferOverflowError, match="value buffer"):
            pu.load(hw)

    def test_infer_without_load_rejected(self):
        pu = ProcessingUnit(num_pes=1)
        with pytest.raises(RuntimeError, match="no individual loaded"):
            pu.infer(np.zeros(3))

    def test_zero_pes_rejected(self):
        with pytest.raises(ValueError):
            ProcessingUnit(num_pes=0)


class TestInferCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        num_pes=st.integers(1, 8),
    )
    def test_hw_matches_sw_bit_for_bit(self, seed, num_pes):
        """The key equivalence property: PU output == software forward."""
        cfg, genome, hw, _, rng = _setup(seed=seed)
        pu = ProcessingUnit(num_pes=num_pes)
        pu.load(hw)
        net = FeedForwardNetwork.create(genome, cfg)
        for _ in range(3):
            x = rng.standard_normal(3)
            sw = net.activate(x)
            out, _ = pu.infer(x)
            assert np.array_equal(sw, out)

    def test_wrong_input_size(self):
        _, _, hw, pu, _ = _setup()
        pu.load(hw)
        with pytest.raises(ValueError, match="inputs"):
            pu.infer(np.zeros(7))

    def test_network_reuse_across_steps(self):
        # §IV-D: the same NN is reused for a series of inputs
        _, genome, hw, pu, rng = _setup(seed=3)
        pu.load(hw)
        a, _ = pu.infer(np.ones(3))
        pu.infer(rng.standard_normal(3))
        b, _ = pu.infer(np.ones(3))
        assert np.array_equal(a, b)  # no state leaks between steps


class TestInferTiming:
    def test_iterations_per_layer(self):
        cfg, genome, hw, _, _ = _setup(seed=5, mutations=20)
        pu = ProcessingUnit(num_pes=2)
        pu.load(hw)
        _, timing = pu.infer(np.zeros(3))
        expected = [math.ceil(len(layer) / 2) for layer in hw.layers]
        assert timing.iterations_per_layer == expected

    def test_static_step_cycles_matches_measured(self):
        for seed in range(5):
            _, _, hw, _, _ = _setup(seed=seed)
            for num_pes in (1, 2, 3):
                pu = ProcessingUnit(num_pes=num_pes)
                pu.load(hw)
                _, timing = pu.infer(np.zeros(3))
                assert pu.step_cycles() == timing.cycles

    def test_pe_active_independent_of_pe_count(self):
        # total useful work is a property of the network, not the cluster
        _, _, hw, _, _ = _setup(seed=2)
        actives = []
        for num_pes in (1, 2, 4, 8):
            pu = ProcessingUnit(num_pes=num_pes)
            pu.load(hw)
            _, timing = pu.infer(np.zeros(3))
            actives.append(timing.pe_active_cycles)
        assert len(set(actives)) == 1

    def test_more_pes_never_slower(self):
        _, _, hw, _, _ = _setup(seed=4, mutations=25)
        previous = math.inf
        for num_pes in (1, 2, 3, 4, 6, 8):
            pu = ProcessingUnit(num_pes=num_pes)
            pu.load(hw)
            _, timing = pu.infer(np.zeros(3))
            assert timing.cycles <= previous
            previous = timing.cycles

    def test_single_pe_cycles_closed_form(self):
        cfg = NEATConfig(num_inputs=2, num_outputs=1)
        from tests.neat.test_network import _genome_from_edges

        genome = _genome_from_edges(cfg, [(-1, 0, 1.0), (-2, 0, 1.0)])
        hw = compile_genome(genome, cfg)
        pe_costs, pu_costs = PECosts(), PUCosts()
        pu = ProcessingUnit(1, pe_costs=pe_costs, pu_costs=pu_costs)
        pu.load(hw)
        _, timing = pu.infer(np.zeros(2))
        expected = (
            pu_costs.input_load_cycles
            + pe_costs.node_cycles(2)  # one node, fan-in 2
            + pu_costs.layer_sync_cycles
        )
        assert timing.cycles == expected
        assert timing.pe_provisioned_cycles == expected  # 1 PE
