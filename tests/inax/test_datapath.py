"""Unit tests for the fixed-point datapath, LPT scheduling, and
activation-sparsity skipping."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inax.compiler import compile_genome
from repro.inax.datapath import FixedPointFormat, Q8_8
from repro.inax.pe import PECosts, ProcessingElement
from repro.inax.pu import ProcessingUnit, PUCosts
from repro.inax.synthetic import random_irregular_genome
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork, NodeEval


class TestFixedPointFormat:
    def test_word_and_resolution(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        assert fmt.word_bits == 16
        assert fmt.resolution == 1 / 256
        assert fmt.max_value == 128 - 1 / 256
        assert fmt.min_value == -128

    def test_invalid_formats(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(fraction_bits=-1)

    def test_quantize_rounds_to_grid(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=2)  # step .25
        assert fmt.quantize(0.3) == 0.25
        assert fmt.quantize(0.38) == 0.5
        assert fmt.quantize(-0.3) == -0.25

    def test_saturation(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=2)
        assert fmt.quantize(100.0) == fmt.max_value
        assert fmt.quantize(-100.0) == fmt.min_value

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Q8_8.quantize(float("nan"))

    @given(st.floats(-100, 100, allow_nan=False))
    def test_error_bound_in_range(self, x):
        fmt = Q8_8
        if fmt.min_value <= x <= fmt.max_value:
            assert abs(fmt.quantize(x) - x) <= fmt.quantization_error_bound() + 1e-12

    @given(st.floats(-500, 500, allow_nan=False))
    def test_idempotent(self, x):
        q = Q8_8.quantize(x)
        assert Q8_8.quantize(q) == q


class TestQuantizedPE:
    def _plan(self):
        return NodeEval(0, 0.1, "tanh", "sum", ((-1, 0.5), (-2, -0.25)))

    def test_quantized_result_close_to_float(self):
        plan = self._plan()
        values = {-1: 0.3, -2: 0.7}
        exact = ProcessingElement().compute(plan, values)
        quantized = ProcessingElement(datapath=Q8_8).compute(plan, values)
        assert abs(exact - quantized) < 0.05

    def test_quantized_output_on_grid(self):
        plan = self._plan()
        out = ProcessingElement(datapath=Q8_8).compute(plan, {-1: 0.3, -2: 0.7})
        assert out == Q8_8.quantize(out)

    def test_coarse_format_larger_error(self):
        plan = self._plan()
        values = {-1: 0.313, -2: 0.709}
        exact = ProcessingElement().compute(plan, values)
        fine = ProcessingElement(
            datapath=FixedPointFormat(8, 12)
        ).compute(plan, values)
        coarse = ProcessingElement(
            datapath=FixedPointFormat(4, 2)
        ).compute(plan, values)
        assert abs(fine - exact) <= abs(coarse - exact) + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_network_level_error_bounded(self, seed):
        cfg = NEATConfig(num_inputs=4, num_outputs=2)
        rng = np.random.default_rng(seed)
        genome = random_irregular_genome(
            0, cfg, 10, 0.3, rng, InnovationTracker(2)
        )
        hw = compile_genome(genome, cfg)
        net = FeedForwardNetwork.create(genome, cfg)
        pu = ProcessingUnit(num_pes=2, datapath=FixedPointFormat(8, 12))
        pu.load(hw)
        x = rng.uniform(-1, 1, size=4)
        exact = net.activate(x)
        quant, _ = pu.infer(x)
        # tanh is 1-Lipschitz; with 12 fractional bits the end-to-end
        # drift through a 10-hidden-node net stays small
        assert np.all(np.abs(exact - quant) < 0.05)


class TestLPTSchedule:
    def _wide_layer_config(self):
        cfg = NEATConfig(num_inputs=6, num_outputs=1)
        from tests.neat.test_network import _genome_from_edges

        # hidden layer fan-ins in key order: (4, 1, 4, 1).  In-order on
        # 2 PEs pairs heavy-with-light twice (8 + 8 cycles); LPT pairs
        # the two heavy nodes together (8 + 5 cycles).
        edges = []
        for node in (2, 3, 4, 5):
            edges.append((-1, node, 1.0))
        for src in (-2, -3, -4):
            edges.append((src, 2, 1.0))  # node 2: fan-in 4
            edges.append((src, 4, 1.0))  # node 4: fan-in 4
        for node in (2, 3, 4, 5):
            edges.append((node, 0, 1.0))
        return cfg, _genome_from_edges(cfg, edges)

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            PUCosts(schedule="random")

    def test_lpt_never_slower_than_inorder(self):
        cfg, genome = self._wide_layer_config()
        hw = compile_genome(genome, cfg)
        for num_pes in (1, 2, 3):
            inorder = ProcessingUnit(
                num_pes, pu_costs=PUCosts(schedule="inorder")
            )
            lpt = ProcessingUnit(num_pes, pu_costs=PUCosts(schedule="lpt"))
            inorder.load(hw)
            lpt.load(hw)
            assert lpt.step_cycles() <= inorder.step_cycles()

    def test_lpt_strictly_faster_on_adversarial_order(self):
        cfg, genome = self._wide_layer_config()
        hw = compile_genome(genome, cfg)
        inorder = ProcessingUnit(2, pu_costs=PUCosts(schedule="inorder"))
        lpt = ProcessingUnit(2, pu_costs=PUCosts(schedule="lpt"))
        inorder.load(hw)
        lpt.load(hw)
        # in-order pairs each heavy node with a light one (two slow
        # iterations); LPT groups the heavies into one iteration
        assert lpt.step_cycles() < inorder.step_cycles()

    def test_lpt_preserves_functional_results(self):
        cfg, genome = self._wide_layer_config()
        hw = compile_genome(genome, cfg)
        net = FeedForwardNetwork.create(genome, cfg)
        lpt = ProcessingUnit(2, pu_costs=PUCosts(schedule="lpt"))
        lpt.load(hw)
        x = np.array([0.1, -0.2, 0.3, 0.4, -0.5, 0.6])
        out, _ = lpt.infer(x)
        assert np.array_equal(out, net.activate(x))


class TestActivationSparsity:
    def test_zero_inputs_skip_macs(self):
        plan = NodeEval(
            0, 0.0, "identity", "sum", ((-1, 1.0), (-2, 1.0), (-3, 1.0))
        )
        dense_pe = ProcessingElement(PECosts())
        sparse_pe = ProcessingElement(PECosts(), skip_zero_activations=True)
        values = {-1: 1.0, -2: 0.0, -3: 0.0}
        r_dense, c_dense = dense_pe.compute_with_cycles(plan, values)
        r_sparse, c_sparse = sparse_pe.compute_with_cycles(plan, values)
        assert r_dense == r_sparse  # exact for sum aggregation
        assert c_sparse == c_dense - 2  # two zero MACs skipped

    def test_non_sum_aggregation_never_skips(self):
        plan = NodeEval(
            0, 0.0, "identity", "product", ((-1, 1.0), (-2, 1.0))
        )
        sparse_pe = ProcessingElement(skip_zero_activations=True)
        dense_pe = ProcessingElement()
        values = {-1: 3.0, -2: 0.0}
        r_sparse, c_sparse = sparse_pe.compute_with_cycles(plan, values)
        r_dense, c_dense = dense_pe.compute_with_cycles(plan, values)
        assert r_sparse == r_dense == 0.0  # a zero factor must count
        assert c_sparse == c_dense

    def test_relu_network_saves_cycles(self):
        cfg = NEATConfig(
            num_inputs=6,
            num_outputs=2,
            default_activation="relu",
            activation_options=("relu",),
        )
        rng = np.random.default_rng(3)
        genome = random_irregular_genome(
            0, cfg, 20, 0.3, rng, InnovationTracker(2)
        )
        hw = compile_genome(genome, cfg)
        dense = ProcessingUnit(2)
        sparse = ProcessingUnit(2, skip_zero_activations=True)
        dense.load(hw)
        sparse.load(hw)
        x = rng.uniform(-1, 1, size=6)
        out_dense, t_dense = dense.infer(x)
        out_sparse, t_sparse = sparse.infer(x)
        assert np.array_equal(out_dense, out_sparse)
        # ReLU zeros roughly half the hidden activations
        assert t_sparse.pe_active_cycles < t_dense.pe_active_cycles
