"""Stateful property test of the INAX device protocol.

Drives the functional device through random begin_wave / step /
end_wave sequences and checks the §IV-B2 handshake invariants hold in
every reachable state: illegal transitions always raise, legal ones
always succeed, and the cycle report only ever grows.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.inax.accelerator import INAX, INAXConfig
from repro.inax.synthetic import synthetic_population

_POP = synthetic_population(num_individuals=4, num_hidden=6, seed=99)
_NUM_PUS = 3


class DeviceProtocol(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.device = INAX(INAXConfig(num_pus=_NUM_PUS, num_pes_per_pu=2))
        self.wave_size = 0  # 0 = no wave in progress
        self.total_cycles_seen = 0.0

    # ------------------------------------------------------------- rules
    @precondition(lambda self: self.wave_size == 0)
    @rule(size=st.integers(1, _NUM_PUS))
    def begin_wave(self, size):
        self.device.begin_wave(_POP[:size])
        self.wave_size = size

    @precondition(lambda self: self.wave_size > 0)
    @rule(data=st.data())
    def step_some_slots(self, data):
        live = data.draw(
            st.sets(
                st.integers(0, self.wave_size - 1), min_size=1
            ),
            label="live slots",
        )
        outputs = self.device.step(
            {slot: np.zeros(8) for slot in live}
        )
        assert set(outputs) == live
        for out in outputs.values():
            assert out.shape == (4,)
            assert np.isfinite(out).all()

    @precondition(lambda self: self.wave_size > 0)
    @rule()
    def end_wave(self):
        self.device.end_wave()
        self.wave_size = 0

    # ------------------------------------------------- illegal transitions
    @precondition(lambda self: self.wave_size > 0)
    @rule()
    def begin_during_wave_rejected(self):
        try:
            self.device.begin_wave(_POP[:1])
        except RuntimeError:
            pass
        else:  # pragma: no cover - the bug this test exists to catch
            raise AssertionError("begin_wave during a wave must raise")

    @precondition(lambda self: self.wave_size == 0)
    @rule()
    def step_without_wave_rejected(self):
        try:
            self.device.step({0: np.zeros(8)})
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("step without a wave must raise")

    @precondition(lambda self: self.wave_size == 0)
    @rule()
    def end_without_wave_rejected(self):
        try:
            self.device.end_wave()
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("end_wave without a wave must raise")

    # --------------------------------------------------------- invariants
    @invariant()
    def cycles_monotone(self):
        total = self.device.report.total_cycles
        assert total >= self.total_cycles_seen
        self.total_cycles_seen = total

    @invariant()
    def utilization_bounded(self):
        assert 0.0 <= self.device.report.u_pe <= 1.0
        assert 0.0 <= self.device.report.u_pu <= 1.0


DeviceProtocol.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
TestDeviceProtocol = DeviceProtocol.TestCase
