"""Property tests for CycleReport invariants (Eq. 1, Fig 9(a)).

These pin down the algebraic guarantees downstream consumers rely on:
utilization rates stay inside [0, 1] no matter how many wave reports are
merged, the Fig 9(a) breakdown is a proper partition when any cycles
were provisioned, and the derived control bucket can never go negative.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inax.timing import CycleReport, utilization

cycles = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def reports(draw) -> CycleReport:
    """Physically plausible reports: active never exceeds provisioned."""
    pe_provisioned = draw(cycles)
    pu_provisioned = draw(cycles)
    return CycleReport(
        setup_cycles=draw(cycles),
        compute_cycles=draw(cycles),
        pe_active_cycles=draw(
            st.floats(
                min_value=0.0,
                max_value=pe_provisioned,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        pe_provisioned_cycles=pe_provisioned,
        pu_active_cycles=draw(
            st.floats(
                min_value=0.0,
                max_value=pu_provisioned,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        pu_provisioned_cycles=pu_provisioned,
        io_cycles=draw(cycles),
        steps=draw(st.integers(min_value=0, max_value=10**6)),
        individuals=draw(st.integers(min_value=0, max_value=10**6)),
    )


@given(st.lists(reports(), min_size=1, max_size=8))
@settings(max_examples=200, deadline=None)
def test_utilization_bounded_under_merge_chains(chain):
    """u_pe / u_pu stay inside [0, 1] after any sequence of merges."""
    total = CycleReport()
    for report in chain:
        total.merge(report)
        assert 0.0 <= total.u_pe <= 1.0
        assert 0.0 <= total.u_pu <= 1.0
    # merging is order-insensitive for the scalar buckets (up to
    # floating-point summation order)
    reversed_total = CycleReport()
    for report in reversed(chain):
        reversed_total.merge(report)
    assert math.isclose(
        reversed_total.pe_active_cycles, total.pe_active_cycles, rel_tol=1e-12
    )
    assert math.isclose(
        reversed_total.pe_provisioned_cycles,
        total.pe_provisioned_cycles,
        rel_tol=1e-12,
    )


@given(reports())
@settings(max_examples=200, deadline=None)
def test_breakdown_fractions_partition_unity(report):
    """Fig 9(a) bars sum to 1 whenever any cycles were provisioned."""
    fractions = report.breakdown()
    assert set(fractions) == {"setup", "pe_active", "evaluate_control"}
    for value in fractions.values():
        assert value >= 0.0
    total = sum(fractions.values())
    if report.setup_cycles + report.pe_provisioned_cycles > 0:
        assert abs(total - 1.0) < 1e-9
    else:
        assert total == 0.0


@given(st.lists(reports(), min_size=0, max_size=8))
@settings(max_examples=200, deadline=None)
def test_control_cycles_never_negative(chain):
    """The derived control bucket is clamped at zero, even for merged
    reports and even when a caller hands in an over-active report."""
    total = CycleReport()
    assert total.control_cycles == 0.0
    for report in chain:
        total.merge(report)
        assert total.control_cycles >= 0.0
    # adversarial case: active > provisioned (a buggy producer) must
    # still never yield a negative control bucket
    weird = CycleReport(pe_active_cycles=10.0, pe_provisioned_cycles=3.0)
    assert weird.control_cycles == 0.0
    total.merge(weird)
    assert total.control_cycles >= 0.0


@given(cycles, cycles)
@settings(max_examples=200, deadline=None)
def test_utilization_helper_bounded(active, provisioned):
    value = utilization(active, provisioned)
    assert 0.0 <= value <= 1.0
    if provisioned <= 0:
        assert value == 0.0
