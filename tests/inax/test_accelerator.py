"""Unit and property tests for the INAX device and analytic scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inax.accelerator import (
    INAX,
    INAXConfig,
    schedule_generation,
    waves_required,
)
from repro.inax.synthetic import synthetic_population


def _drive_device(config, pop, lengths):
    """Run the functional device over the same schedule the analytic
    scheduler assumes, returning its report."""
    device = INAX(config)
    num_pus = config.num_pus
    for start in range(0, len(pop), num_pus):
        wave = pop[start : start + num_pus]
        wave_lengths = lengths[start : start + num_pus]
        device.begin_wave(wave)
        t = 0
        while True:
            live = {
                i: np.zeros(wave[i].num_inputs)
                for i in range(len(wave))
                if wave_lengths[i] > t
            }
            if not live:
                break
            device.step(live)
            t += 1
        device.end_wave()
    return device.report


class TestConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            INAXConfig(num_pus=0)
        with pytest.raises(ValueError):
            INAXConfig(num_pes_per_pu=0)

    def test_device_kwargs(self):
        device = INAX(num_pus=3, num_pes_per_pu=2)
        assert device.config.num_pus == 3
        with pytest.raises(TypeError):
            INAX(INAXConfig(), num_pus=3)


class TestDevice:
    def test_wave_too_large_rejected(self):
        pop = synthetic_population(num_individuals=5, seed=0)
        device = INAX(num_pus=2, num_pes_per_pu=1)
        with pytest.raises(ValueError, match="exceeds"):
            device.begin_wave(pop)

    def test_empty_wave_rejected(self):
        device = INAX(num_pus=2, num_pes_per_pu=1)
        with pytest.raises(ValueError):
            device.begin_wave([])

    def test_step_without_wave_rejected(self):
        device = INAX(num_pus=2, num_pes_per_pu=1)
        with pytest.raises(RuntimeError):
            device.step({0: np.zeros(8)})

    def test_step_bad_slot_rejected(self):
        pop = synthetic_population(num_individuals=1, seed=0)
        device = INAX(num_pus=2, num_pes_per_pu=1)
        device.begin_wave(pop)
        with pytest.raises(IndexError):
            device.step({1: np.zeros(8)})

    def test_outputs_per_slot(self):
        pop = synthetic_population(num_individuals=3, seed=1)
        device = INAX(num_pus=4, num_pes_per_pu=2)
        device.begin_wave(pop)
        outs = device.step({i: np.zeros(8) for i in range(3)})
        assert set(outs) == {0, 1, 2}
        for out in outs.values():
            assert out.shape == (4,)


class TestAnalyticAgreement:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        num_pus=st.integers(1, 6),
        num_pes=st.integers(1, 4),
    )
    def test_analytic_matches_device(self, seed, num_pus, num_pes):
        """schedule_generation must agree with the stepwise device."""
        rng = np.random.default_rng(seed)
        pop = synthetic_population(
            num_individuals=7, num_hidden=10, seed=seed
        )
        lengths = [int(rng.integers(1, 6)) for _ in pop]
        config = INAXConfig(num_pus=num_pus, num_pes_per_pu=num_pes)
        analytic = schedule_generation(config, pop, lengths)
        measured = _drive_device(config, pop, lengths)
        assert analytic.total_cycles == measured.total_cycles
        assert analytic.setup_cycles == measured.setup_cycles
        assert analytic.pe_active_cycles == measured.pe_active_cycles
        assert analytic.pe_provisioned_cycles == measured.pe_provisioned_cycles
        assert analytic.pu_active_cycles == measured.pu_active_cycles
        assert analytic.steps == measured.steps

    def test_length_mismatch_rejected(self):
        pop = synthetic_population(num_individuals=3, seed=0)
        with pytest.raises(ValueError):
            schedule_generation(INAXConfig(), pop, [1, 2])

    def test_zero_length_rejected(self):
        pop = synthetic_population(num_individuals=2, seed=0)
        with pytest.raises(ValueError):
            schedule_generation(INAXConfig(), pop, [1, 0])


class TestScalingProperties:
    def test_more_pus_never_slower(self):
        pop = synthetic_population(num_individuals=40, seed=3)
        lengths = [10] * 40
        previous = float("inf")
        for num_pus in (1, 2, 5, 10, 20, 40):
            cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=2)
            total = schedule_generation(cfg, pop, lengths).total_cycles
            assert total <= previous
            previous = total

    def test_more_pes_never_slower(self):
        pop = synthetic_population(num_individuals=10, seed=4)
        lengths = [10] * 10
        previous = float("inf")
        for num_pes in (1, 2, 4, 8, 16):
            cfg = INAXConfig(num_pus=5, num_pes_per_pu=num_pes)
            total = schedule_generation(cfg, pop, lengths).total_cycles
            assert total <= previous
            previous = total

    def test_utilization_bounds(self):
        pop = synthetic_population(num_individuals=20, seed=5)
        rng = np.random.default_rng(0)
        lengths = [int(rng.integers(1, 20)) for _ in pop]
        for num_pus, num_pes in [(1, 1), (7, 3), (20, 8)]:
            cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=num_pes)
            rep = schedule_generation(cfg, pop, lengths)
            assert 0.0 <= rep.u_pe <= 1.0
            assert 0.0 <= rep.u_pu <= 1.0

    def test_full_wave_beats_almost_full_wave_utilization(self):
        # §V-B: 100 PUs finish 200 individuals in 2 full waves; 99 PUs
        # need 3 waves with the last one nearly empty
        pop = synthetic_population(num_individuals=200, seed=6)
        lengths = [10] * 200
        u_100 = schedule_generation(
            INAXConfig(num_pus=100, num_pes_per_pu=1), pop, lengths
        ).u_pu
        u_99 = schedule_generation(
            INAXConfig(num_pus=99, num_pes_per_pu=1), pop, lengths
        ).u_pu
        assert u_100 > u_99

    def test_early_termination_lowers_pu_utilization(self):
        pop = synthetic_population(num_individuals=10, seed=7)
        cfg = INAXConfig(num_pus=10, num_pes_per_pu=1)
        uniform = schedule_generation(cfg, pop, [20] * 10)
        skewed = schedule_generation(cfg, pop, [1] * 9 + [20])
        assert skewed.u_pu < uniform.u_pu

    def test_waves_required(self):
        assert waves_required(200, 100) == 2
        assert waves_required(200, 99) == 3
        assert waves_required(1, 50) == 1


class TestReportInvariants:
    def test_breakdown_sums_to_one(self):
        pop = synthetic_population(num_individuals=10, seed=8)
        cfg = INAXConfig(num_pus=4, num_pes_per_pu=3)
        rep = schedule_generation(cfg, pop, [5] * 10)
        breakdown = rep.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        # the Fig 9(a) bars fold set-up into the normalization, so the
        # active fraction is a lower bound on the compute-phase U(PE)
        assert breakdown["pe_active"] <= rep.u_pe
        expected = rep.pe_active_cycles / (
            rep.setup_cycles + rep.pe_provisioned_cycles
        )
        assert breakdown["pe_active"] == pytest.approx(expected)

    def test_merge_accumulates(self):
        pop = synthetic_population(num_individuals=6, seed=9)
        cfg = INAXConfig(num_pus=3, num_pes_per_pu=1)
        a = schedule_generation(cfg, pop[:3], [4, 4, 4])
        b = schedule_generation(cfg, pop[3:], [4, 4, 4])
        total_a = a.total_cycles
        a.merge(b)
        assert a.total_cycles == total_a + b.total_cycles
        assert a.individuals == 6


class TestControllerProtocol:
    """The sig-channel handshake order (§IV-B2) is enforced."""

    def test_begin_wave_twice_rejected(self):
        pop = synthetic_population(num_individuals=2, seed=10)
        device = INAX(num_pus=2, num_pes_per_pu=1)
        device.begin_wave(pop[:1])
        with pytest.raises(RuntimeError, match="already in progress"):
            device.begin_wave(pop[1:])

    def test_end_wave_without_begin_rejected(self):
        device = INAX(num_pus=2, num_pes_per_pu=1)
        with pytest.raises(RuntimeError, match="no wave in progress"):
            device.end_wave()

    def test_full_handshake_cycle(self):
        pop = synthetic_population(num_individuals=2, seed=11)
        device = INAX(num_pus=2, num_pes_per_pu=1)
        for _ in range(3):  # repeated waves are fine when paired
            device.begin_wave(pop)
            device.step({0: np.zeros(8), 1: np.zeros(8)})
            device.end_wave()
        assert device.report.individuals == 6


class TestIOOverlap:
    def test_overlap_never_slower(self):
        pop = synthetic_population(num_individuals=12, seed=12)
        lengths = [6] * 12
        serial = schedule_generation(
            INAXConfig(num_pus=4, num_pes_per_pu=2), pop, lengths
        )
        overlapped = schedule_generation(
            INAXConfig(num_pus=4, num_pes_per_pu=2, overlap_io=True),
            pop,
            lengths,
        )
        assert overlapped.total_cycles <= serial.total_cycles
        assert overlapped.pe_active_cycles == serial.pe_active_cycles

    def test_overlap_device_matches_analytic(self):
        pop = synthetic_population(num_individuals=5, seed=13)
        lengths = [4] * 5
        config = INAXConfig(num_pus=3, num_pes_per_pu=2, overlap_io=True)
        analytic = schedule_generation(config, pop, lengths)
        measured = _drive_device(config, pop, lengths)
        assert analytic.total_cycles == measured.total_cycles

    def test_overlap_functional_results_unchanged(self):
        pop = synthetic_population(num_individuals=2, seed=14)
        a = INAX(INAXConfig(num_pus=2, num_pes_per_pu=2))
        b = INAX(INAXConfig(num_pus=2, num_pes_per_pu=2, overlap_io=True))
        for device in (a, b):
            device.begin_wave(pop)
        x = {0: np.ones(8), 1: np.zeros(8)}
        out_a = a.step(x)
        out_b = b.step(x)
        for slot in out_a:
            assert np.array_equal(out_a[slot], out_b[slot])
