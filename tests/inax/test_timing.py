"""Unit tests for cycle reports and utilization math."""

import pytest
from hypothesis import given, strategies as st

from repro.inax.dma import DMAModel
from repro.inax.timing import CycleReport, utilization


class TestUtilization:
    def test_basic(self):
        assert utilization(50, 100) == 0.5

    def test_zero_provisioned(self):
        assert utilization(10, 0) == 0.0

    def test_clamped_to_unit_interval(self):
        assert utilization(101, 100) == 1.0
        assert utilization(-1, 100) == 0.0

    @given(
        st.floats(0, 1e9, allow_nan=False),
        st.floats(1e-9, 1e9, allow_nan=False),
    )
    def test_always_in_bounds(self, active, provisioned):
        assert 0.0 <= utilization(active, provisioned) <= 1.0


class TestCycleReport:
    def test_totals(self):
        rep = CycleReport(setup_cycles=10, compute_cycles=90)
        assert rep.total_cycles == 100

    def test_control_cycles(self):
        rep = CycleReport(
            pe_provisioned_cycles=100, pe_active_cycles=60
        )
        assert rep.control_cycles == 40

    def test_control_never_negative(self):
        rep = CycleReport(pe_provisioned_cycles=10, pe_active_cycles=20)
        assert rep.control_cycles == 0

    def test_breakdown_empty(self):
        rep = CycleReport()
        assert rep.breakdown() == {
            "setup": 0.0,
            "pe_active": 0.0,
            "evaluate_control": 0.0,
        }

    def test_breakdown_fractions(self):
        rep = CycleReport(
            setup_cycles=20,
            pe_provisioned_cycles=80,
            pe_active_cycles=48,
        )
        b = rep.breakdown()
        assert b["setup"] == pytest.approx(0.2)
        assert b["pe_active"] == pytest.approx(0.48)
        assert b["evaluate_control"] == pytest.approx(0.32)
        assert sum(b.values()) == pytest.approx(1.0)

    def test_merge(self):
        a = CycleReport(setup_cycles=1, compute_cycles=2, steps=3, individuals=1)
        b = CycleReport(setup_cycles=4, compute_cycles=8, steps=5, individuals=2)
        a.merge(b)
        assert a.setup_cycles == 5
        assert a.compute_cycles == 10
        assert a.steps == 8
        assert a.individuals == 3


class TestDMA:
    def test_zero_words_free(self):
        assert DMAModel().transfer_cycles(0) == 0

    def test_latency_plus_bandwidth(self):
        dma = DMAModel(words_per_cycle=4, latency_cycles=8)
        assert dma.transfer_cycles(4) == 9
        assert dma.transfer_cycles(5) == 10  # ceil

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DMAModel().transfer_cycles(-1)

    @given(st.integers(1, 10_000))
    def test_monotone_in_words(self, words):
        dma = DMAModel()
        assert dma.transfer_cycles(words + 1) >= dma.transfer_cycles(words)
