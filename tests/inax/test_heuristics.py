"""Unit tests for the §V parallelism heuristics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.inax.heuristics import (
    choose_num_pes,
    choose_num_pus,
    divisor_ladder,
    pe_candidates,
    pu_candidates,
)


def test_ladder_for_ten():
    # ceil(10/d): 10, 5, 4, 3, 2, 1 (deduplicated)
    assert divisor_ladder(10) == [10, 5, 4, 3, 2, 1]


def test_ladder_for_fifteen():
    # the paper's Fig 6(b) case: 15, 8, 5, 4, 3, ...
    ladder = divisor_ladder(15)
    assert ladder[:4] == [15, 8, 5, 4]
    assert ladder[-1] == 1


def test_ladder_with_cap():
    assert divisor_ladder(200, max_value=80) == [67, 50, 40, 34, 29] + [
        v for v in divisor_ladder(200) if v < 29
    ]


def test_ladder_invalid():
    with pytest.raises(ValueError):
        divisor_ladder(0)


@given(st.integers(1, 500))
def test_ladder_values_are_ceil_divisions(k):
    ladder = divisor_ladder(k)
    assert ladder[0] == k
    assert ladder[-1] == 1
    valid = {math.ceil(k / d) for d in range(1, k + 1)}
    assert set(ladder) == valid
    assert ladder == sorted(ladder, reverse=True)


def test_pe_choice_defaults_to_output_count():
    # §VI-C: "we picked PE=output nodes"
    assert choose_num_pes(4) == 4
    assert choose_num_pes(1) == 1


def test_pe_choice_resource_restricted():
    # §V-A: fall back to ceil(k/2), ceil(k/3), ...
    assert choose_num_pes(10, max_pes=7) == 5
    assert choose_num_pes(10, max_pes=4) == 4
    assert choose_num_pes(10, max_pes=1) == 1


def test_pu_choice():
    assert choose_num_pus(200) == 200
    # the paper uses PU=50 = ceil(200/4)
    assert choose_num_pus(200, max_pus=50) == 50
    assert choose_num_pus(200, max_pus=99) == 67


def test_candidates_are_ladders():
    assert pe_candidates(6) == divisor_ladder(6)
    assert pu_candidates(300, 150) == divisor_ladder(300, 150)


def test_paper_fig7_peaks():
    # Fig 7(a): with p=200 the peaks are at 200, 100, 67, 50, ...
    assert pu_candidates(200)[:4] == [200, 100, 67, 50]
