"""Unit tests for the genome -> HW configuration compiler."""

import numpy as np
import pytest

from repro.inax.compiler import compile_genome, compile_network
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork

from tests.conftest import evolved_genome
from tests.neat.test_network import _genome_from_edges


def _compiled(seed=0, mutations=12):
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    genome = evolved_genome(cfg, tracker, rng, mutations=mutations)
    return cfg, genome, compile_genome(genome, cfg)


def test_structure_matches_decoded_network():
    cfg, genome, hw = _compiled()
    net = FeedForwardNetwork.create(genome, cfg)
    assert hw.num_inputs == len(net.input_keys)
    assert hw.num_outputs == len(net.output_keys)
    assert hw.num_nodes == net.num_evaluated_nodes
    assert hw.num_connections == net.num_macs
    assert hw.num_layers == len(net.layers)
    assert hw.layer_sizes() == net.layer_sizes


def test_config_words_formula():
    cfg = NEATConfig(num_inputs=2, num_outputs=1)
    genome = _genome_from_edges(cfg, [(-1, 0, 1.0), (-2, 0, 1.0)])
    hw = compile_genome(genome, cfg)
    # 2 connections + 2 words x 1 node
    assert hw.config_words == 2 + 2
    assert hw.weight_buffer_words == hw.config_words


def test_value_buffer_holds_all_activations():
    cfg, _, hw = _compiled()
    assert hw.value_buffer_words == hw.num_inputs + hw.num_nodes


def test_max_layer_width_and_fan_in():
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    edges = [
        (-1, 0, 1.0),
        (-2, 0, 1.0),
        (-3, 0, 1.0),
        (-1, 1, 1.0),
    ]
    hw = compile_genome(_genome_from_edges(cfg, edges), cfg)
    assert hw.max_layer_width == 2  # both outputs in the single layer
    assert hw.max_fan_in == 3


def test_compile_network_equivalent_to_compile_genome():
    cfg, genome, hw = _compiled(seed=7)
    net = FeedForwardNetwork.create(genome, cfg)
    hw2 = compile_network(net)
    assert hw2.layer_sizes() == hw.layer_sizes()
    assert hw2.num_connections == hw.num_connections


def test_pruned_genes_not_shipped():
    cfg = NEATConfig(num_inputs=2, num_outputs=1)
    # node 5 is a dead branch; it must not consume HW resources
    genome = _genome_from_edges(cfg, [(-1, 0, 1.0), (-2, 5, 1.0)])
    hw = compile_genome(genome, cfg)
    assert hw.num_nodes == 1
    assert hw.num_connections == 1
