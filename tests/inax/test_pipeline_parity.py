"""S1 parity sweep: the stepwise device and the closed-form scheduler
must agree cycle-for-cycle under every pipelining policy — including
partial waves, fault-aborted waves, and ``--fallback`` software
re-runs."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backends import CPUBackend, INAXBackend
from repro.inax.accelerator import INAX, INAXConfig, schedule_generation
from repro.inax.compiler import compile_genome
from repro.inax.pipeline import PipelineConfig, pack_waves
from repro.inax.pu import _static_step_cycles
from repro.inax.synthetic import synthetic_population
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.resilience.faults import FaultPlan

from tests.conftest import evolved_genome

POLICIES = [
    PipelineConfig(schedule=schedule, prefetch=prefetch)
    for schedule in ("arrival", "lpt")
    for prefetch in (False, True)
]

REPORT_FIELDS = (
    "setup_cycles",
    "compute_cycles",
    "prefetch_hidden_cycles",
    "pe_active_cycles",
    "pe_provisioned_cycles",
    "pu_active_cycles",
    "pu_provisioned_cycles",
    "io_cycles",
    "steps",
    "individuals",
    "waves",
    "live_slot_steps",
    "slot_steps_provisioned",
)


def _assert_reports_equal(device_report, analytic_report):
    for name in REPORT_FIELDS:
        assert getattr(device_report, name) == pytest.approx(
            getattr(analytic_report, name)
        ), name
    assert device_report.total_cycles == pytest.approx(
        analytic_report.total_cycles
    )


def _costs(config, pop, lengths):
    """The predicted costs a length-aware backend would compute."""
    return [
        float(length)
        * _static_step_cycles(
            c, config.num_pes_per_pu, config.pe_costs, config.pu_costs
        )
        for c, length in zip(pop, lengths)
    ]


def _drive_pipelined(config, pop, lengths, pipeline, costs=None):
    """Drive the functional device over the pipelined dispatch order."""
    device = INAX(config)
    if pipeline.schedule == "arrival":
        costs = [None] * len(pop)
    elif costs is None:
        costs = _costs(config, pop, lengths)
    waves = pack_waves(costs, config.num_pus, pipeline.schedule)
    for ordinal, indices in enumerate(waves):
        wave = [pop[i] for i in indices]
        wave_lengths = [lengths[i] for i in indices]
        device.begin_wave(
            wave, prefetched=pipeline.prefetch and ordinal > 0
        )
        t = 0
        while True:
            live = {
                i: np.zeros(wave[i].num_inputs)
                for i in range(len(wave))
                if wave_lengths[i] > t
            }
            if not live:
                break
            device.step(live)
            t += 1
        device.end_wave()
    return device.report


class TestPolicyParity:
    """Device vs analytic, all four {schedule} x {prefetch} combos."""

    @pytest.mark.parametrize(
        "pipeline", POLICIES, ids=lambda p: f"{p.schedule}-pf{p.prefetch}"
    )
    def test_partial_wave_parity(self, pipeline):
        # 7 individuals on 3 PUs: two full waves plus a partial one
        config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=7, seed=3)
        lengths = [5, 30, 2, 18, 9, 3, 25]
        costs = _costs(config, pop, lengths)
        device = _drive_pipelined(config, pop, lengths, pipeline, costs)
        analytic = schedule_generation(
            config, pop, lengths, pipeline=pipeline, predicted_costs=costs
        )
        _assert_reports_equal(device, analytic)

    @pytest.mark.parametrize(
        "pipeline", POLICIES, ids=lambda p: f"{p.schedule}-pf{p.prefetch}"
    )
    @given(
        num_individuals=st.integers(1, 10),
        num_pus=st.integers(1, 5),
        lengths_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_parity(
        self, pipeline, num_individuals, num_pus, lengths_seed
    ):
        config = INAXConfig(num_pus=num_pus, num_pes_per_pu=2)
        pop = synthetic_population(
            num_individuals=num_individuals, seed=lengths_seed % 7
        )
        rng = np.random.default_rng(lengths_seed)
        lengths = [int(v) for v in rng.integers(1, 40, num_individuals)]
        costs = _costs(config, pop, lengths)
        device = _drive_pipelined(config, pop, lengths, pipeline, costs)
        analytic = schedule_generation(
            config, pop, lengths, pipeline=pipeline, predicted_costs=costs
        )
        _assert_reports_equal(device, analytic)

    def test_stale_predictions_still_parity(self):
        """Predictions can be arbitrarily wrong (lengths shifted a
        generation) — both paths must still pack identically and stay
        cycle-exact, because they share the *same* predictions."""
        config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=6, seed=1)
        lengths = [4, 25, 7, 12, 2, 30]
        # stale: predicted from a different (rotated) length vector,
        # with one never-evaluated individual
        stale = _costs(config, pop, lengths[1:] + lengths[:1])
        stale[2] = None
        pipeline = PipelineConfig(schedule="lpt", prefetch=True)
        device = _drive_pipelined(config, pop, lengths, pipeline, stale)
        analytic = schedule_generation(
            config, pop, lengths, pipeline=pipeline, predicted_costs=stale
        )
        _assert_reports_equal(device, analytic)

    def test_prefetch_never_slower(self):
        config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=9, seed=5)
        lengths = [12, 3, 40, 7, 22, 5, 31, 2, 16]
        for schedule in ("arrival", "lpt"):
            base = schedule_generation(
                config, pop, lengths,
                pipeline=PipelineConfig(schedule=schedule),
            )
            fast = schedule_generation(
                config, pop, lengths,
                pipeline=PipelineConfig(schedule=schedule, prefetch=True),
            )
            assert fast.total_cycles <= base.total_cycles
            # the wall clock the prefetch removed is exactly what it hid
            assert base.total_cycles - fast.total_cycles == pytest.approx(
                fast.prefetch_hidden_cycles
            )

    def test_default_pipeline_matches_legacy_schedule(self):
        """pipeline=None must price exactly like the pre-pipeline code."""
        config = INAXConfig(num_pus=4, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=10, seed=2)
        lengths = [8, 3, 17, 5, 22, 9, 4, 30, 2, 11]
        legacy = schedule_generation(config, pop, lengths)
        explicit = schedule_generation(
            config, pop, lengths, pipeline=PipelineConfig()
        )
        _assert_reports_equal(legacy, explicit)
        assert legacy.prefetch_hidden_cycles == 0.0


class TestAbortedWaveParity:
    def test_abort_prices_like_a_truncated_wave(self):
        """A wave aborted after k steps burns exactly what a wave whose
        episodes all ended at k would: abort loses no cycles and
        double-counts none."""
        config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=3, seed=4)
        k = 6

        aborted = INAX(config)
        aborted.begin_wave(pop)
        for _ in range(k):
            aborted.step(
                {i: np.zeros(pop[i].num_inputs) for i in range(len(pop))}
            )
        aborted.abort_wave()

        truncated = schedule_generation(config, pop, [k] * len(pop))
        _assert_reports_equal(aborted.report, truncated)

    def test_abort_preserves_prefetch_window(self):
        """The compute burned before an abort still hides the next
        wave's set-up — the weight channel was idle during it."""
        config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        pop = synthetic_population(num_individuals=6, seed=4)
        first, second = pop[:3], pop[3:]
        k = 6

        device = INAX(config)
        device.begin_wave(first)
        for _ in range(k):
            device.step(
                {i: np.zeros(first[i].num_inputs) for i in range(len(first))}
            )
        device.abort_wave()
        # double-abort during error handling must not zero the window
        device.abort_wave()
        before = dataclasses.replace(device.report)
        device.begin_wave(second, prefetched=True)
        device.abort_wave()

        analytic = schedule_generation(
            config,
            first + second,
            [k] * len(pop),
            pipeline=PipelineConfig(prefetch=True),
        )
        assert device.report.setup_cycles == pytest.approx(
            analytic.setup_cycles
        )
        assert device.report.prefetch_hidden_cycles == pytest.approx(
            analytic.prefetch_hidden_cycles
        )
        assert device.report.prefetch_hidden_cycles > before.prefetch_hidden_cycles


def _cfg():
    return NEATConfig(num_inputs=4, num_outputs=2, population_size=6)


def _genomes(cfg):
    tracker = InnovationTracker(cfg.num_outputs)
    rng = np.random.default_rng(0)
    return [
        evolved_genome(cfg, tracker, rng, mutations=6, key=i)
        for i in range(cfg.population_size)
    ]


class TestFallbackCycleAccounting:
    """--fallback software re-runs must not double-count device cycles."""

    def test_wedged_run_burns_exactly_the_aborted_setups(self):
        cfg = _cfg()
        inax_config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        backend = INAXBackend(
            "cartpole",
            cfg,
            inax_config=inax_config,
            base_seed=1,
            fallback="cpu-fast",
            fault_plan=FaultPlan.parse("seed=0,inax.wedge@1.0"),
        )
        genomes = _genomes(cfg)
        try:
            backend.evaluate(genomes)
            backend.drain()
            report = backend.records[-1].cycle_report
            waves = backend.fallback_waves
        finally:
            backend.close()
        assert waves == 2  # 6 genomes / 3 PUs, every wave wedged at step 0

        # reconstruct: each wedged wave burned its set-up and nothing
        # else (wedge fires before step cycles accrue); the software
        # re-run adds no device cycles
        reference = INAX(inax_config)
        for start in range(0, len(genomes), inax_config.num_pus):
            wave = [
                compile_genome(genome, cfg)
                for genome in genomes[start : start + inax_config.num_pus]
            ]
            reference.begin_wave(wave)
            reference.abort_wave()
        _assert_reports_equal(report, reference.report)
        assert report.compute_cycles == 0.0
        assert report.steps == 0

    def test_wedged_fitness_bit_identical_under_lpt_prefetch(self):
        cfg = _cfg()
        inax_config = INAXConfig(num_pus=3, num_pes_per_pu=2)
        clean = CPUBackend("cartpole", cfg, base_seed=1)
        genomes = _genomes(cfg)
        clean.evaluate(genomes)
        expected = [g.fitness for g in genomes]

        backend = INAXBackend(
            "cartpole",
            cfg,
            inax_config=inax_config,
            base_seed=1,
            fallback="cpu-fast",
            fault_plan=FaultPlan.parse("seed=11,inax.wedge@0.05"),
            pipeline=PipelineConfig(
                schedule="lpt", prefetch=True, overlap=True
            ),
        )
        chaotic = _genomes(cfg)
        try:
            backend.evaluate(chaotic)
            backend.drain()
        finally:
            backend.close()
        assert [g.fitness for g in chaotic] == expected
