"""Unit tests for the generation-pipelining policies (repro.inax.pipeline)."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.inax.accelerator import INAXConfig
from repro.inax.heuristics import wave_occupancy
from repro.inax.pipeline import (
    SCHEDULES,
    PipelineConfig,
    pack_waves,
    predict_costs,
)
from repro.inax.pu import _static_step_cycles
from repro.inax.synthetic import synthetic_population
from repro.inax.timing import CycleReport


class TestPipelineConfig:
    def test_defaults_are_the_paper_baseline(self):
        cfg = PipelineConfig()
        assert cfg.schedule == "arrival"
        assert cfg.prefetch is False
        assert cfg.overlap is False

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            PipelineConfig(schedule="sjf")

    def test_frozen(self):
        cfg = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.schedule = "lpt"

    def test_schedules_registry(self):
        assert SCHEDULES == ("arrival", "lpt")


class TestPackWaves:
    def test_arrival_is_population_order(self):
        waves = pack_waves([5.0, 1.0, 9.0, 2.0, 7.0], 2, "arrival")
        assert waves == [[0, 1], [2, 3], [4]]

    def test_arrival_ignores_costs(self):
        a = pack_waves([None] * 5, 3, "arrival")
        b = pack_waves([9.0, 1.0, 5.0, 2.0, 7.0], 3, "arrival")
        assert a == b

    def test_lpt_sorts_longest_first(self):
        waves = pack_waves([5.0, 1.0, 9.0, 2.0, 7.0], 2, "lpt")
        assert waves == [[2, 4], [0, 3], [1]]

    def test_lpt_ties_break_by_arrival(self):
        waves = pack_waves([3.0, 3.0, 3.0], 2, "lpt")
        assert waves == [[0, 1], [2]]

    def test_lpt_unknown_costs_keep_arrival_order_at_tail(self):
        waves = pack_waves([None, 4.0, None, 9.0], 2, "lpt")
        assert waves == [[3, 1], [0, 2]]

    def test_all_unknown_degenerates_to_arrival(self):
        assert pack_waves([None] * 4, 3, "lpt") == [[0, 1, 2], [3]]

    def test_empty_population(self):
        assert pack_waves([], 3, "lpt") == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            pack_waves([1.0], 0)

    def test_schedule_validated(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            pack_waves([1.0], 2, "sjf")

    @given(
        costs=st.lists(
            st.one_of(st.none(), st.floats(0.0, 1e6)), max_size=40
        ),
        capacity=st.integers(1, 7),
        schedule=st.sampled_from(SCHEDULES),
    )
    @settings(max_examples=100, deadline=None)
    def test_waves_are_a_partition(self, costs, capacity, schedule):
        waves = pack_waves(costs, capacity, schedule)
        flat = [i for wave in waves for i in wave]
        assert sorted(flat) == list(range(len(costs)))
        assert all(1 <= len(wave) <= capacity for wave in waves)
        # every wave but the last is full
        assert all(len(wave) == capacity for wave in waves[:-1])

    @given(
        costs=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=30),
        capacity=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_lpt_minimizes_sum_of_wave_maxima(self, costs, capacity):
        """LPT chunking is optimal for the sum-of-per-wave-maxima
        objective on a sequential device: no other packing does better
        than sorting descending and chunking."""
        waves = pack_waves(costs, capacity, "lpt")
        lpt_total = sum(max(costs[i] for i in wave) for wave in waves)
        arrival = pack_waves(costs, capacity, "arrival")
        arrival_total = sum(max(costs[i] for i in wave) for wave in arrival)
        # relative slack: both totals sum the same values in different
        # orders at capacity=1, and float addition is not associative
        assert lpt_total <= arrival_total * (1.0 + 1e-12) + 1e-9


class TestPredictCosts:
    def test_known_and_unknown_keys(self):
        pop = synthetic_population(num_individuals=3, seed=0)
        config = INAXConfig(num_pus=4, num_pes_per_pu=2)
        costs = predict_costs(
            pop,
            keys=["a", "b", "c"],
            last_lengths={"a": 10, "c": 3},
            num_pes_per_pu=config.num_pes_per_pu,
            pe_costs=config.pe_costs,
            pu_costs=config.pu_costs,
        )
        per_step = [
            _static_step_cycles(
                c, config.num_pes_per_pu, config.pe_costs, config.pu_costs
            )
            for c in pop
        ]
        assert costs == [10.0 * per_step[0], None, 3.0 * per_step[2]]

    def test_empty(self):
        assert predict_costs([], [], {}, 2, None, None) == []


class TestWaveOccupancy:
    def test_uniform_lengths_full_waves(self):
        assert wave_occupancy([7, 7, 7, 7], 2) == 1.0

    def test_skew_hurts_arrival(self):
        # arrival pairs the 100 with a 1: provisioned 2*(100+100),
        # lpt pairs the two 100s: provisioned 2*(100+1)
        lengths = [100, 1, 100, 1]
        arrival = wave_occupancy(lengths, 2, "arrival")
        lpt = wave_occupancy(lengths, 2, "lpt")
        assert lpt > arrival
        assert arrival == pytest.approx(202 / 400)
        assert lpt == pytest.approx(202 / 202)

    def test_empty_is_zero(self):
        assert wave_occupancy([], 3) == 0.0

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            wave_occupancy([5, 0], 2)


class TestCycleReportPipelineFields:
    def test_packing_efficiency(self):
        report = CycleReport(live_slot_steps=30, slot_steps_provisioned=40)
        assert report.packing_efficiency == pytest.approx(0.75)

    def test_packing_efficiency_empty(self):
        assert CycleReport().packing_efficiency == 0.0

    def test_merge_accumulates_new_fields(self):
        a = CycleReport(
            waves=2,
            prefetch_hidden_cycles=5.0,
            live_slot_steps=10,
            slot_steps_provisioned=12,
        )
        b = CycleReport(
            waves=1,
            prefetch_hidden_cycles=2.5,
            live_slot_steps=3,
            slot_steps_provisioned=6,
        )
        a.merge(b)
        assert a.waves == 3
        assert a.prefetch_hidden_cycles == 7.5
        assert a.live_slot_steps == 13
        assert a.slot_steps_provisioned == 18

    def test_total_cycles_excludes_hidden_setup(self):
        report = CycleReport(
            setup_cycles=10.0, compute_cycles=90.0, prefetch_hidden_cycles=40.0
        )
        assert report.total_cycles == 100.0
