"""Unit tests for the PE model."""

import math

import pytest

from repro.inax.pe import PECosts, ProcessingElement
from repro.neat.activations import activations
from repro.neat.network import NodeEval


def test_node_cycles_formula():
    costs = PECosts(mac_cycles=1, pipeline_depth=4)
    assert costs.node_cycles(0) == 4
    assert costs.node_cycles(7) == 11
    costs2 = PECosts(mac_cycles=2, pipeline_depth=3)
    assert costs2.node_cycles(5) == 13


def test_compute_matches_software_semantics():
    pe = ProcessingElement()
    plan = NodeEval(
        key=0,
        bias=0.5,
        activation="tanh",
        aggregation="sum",
        ingress=((-1, 2.0), (-2, -1.0)),
    )
    values = {-1: 1.0, -2: 0.25}
    result = pe.compute(plan, values)
    expected = activations.get("tanh")(1.0 * 2.0 + 0.25 * -1.0 + 0.5)
    assert result == expected  # bit-for-bit, same registry function


def test_compute_zero_ingress_is_bias_only():
    pe = ProcessingElement()
    plan = NodeEval(0, 0.3, "identity", "sum", ())
    assert pe.compute(plan, {}) == pytest.approx(0.3)


def test_counters_accumulate():
    pe = ProcessingElement(PECosts(pipeline_depth=2))
    plan = NodeEval(0, 0.0, "identity", "sum", ((-1, 1.0),))
    pe.compute(plan, {-1: 1.0})
    pe.compute(plan, {-1: 2.0})
    assert pe.nodes_computed == 2
    assert pe.active_cycles == 2 * (1 + 2)
    pe.reset_counters()
    assert pe.active_cycles == 0 and pe.nodes_computed == 0


def test_cycles_for_is_pure():
    pe = ProcessingElement()
    plan = NodeEval(0, 0.0, "identity", "sum", ((-1, 1.0), (-2, 1.0)))
    before = pe.active_cycles
    assert pe.cycles_for(plan) == 2 + pe.costs.pipeline_depth
    assert pe.active_cycles == before  # timing query has no side effect


def test_aggregation_respected():
    pe = ProcessingElement()
    plan = NodeEval(
        0, 0.0, "identity", "max", ((-1, 1.0), (-2, 1.0))
    )
    assert pe.compute(plan, {-1: 3.0, -2: 7.0}) == 7.0


def test_extreme_weights_stay_finite():
    pe = ProcessingElement()
    plan = NodeEval(0, 0.0, "sigmoid", "sum", ((-1, 30.0),))
    out = pe.compute(plan, {-1: 1e6})
    assert math.isfinite(out)
    assert 0.0 <= out <= 1.0
