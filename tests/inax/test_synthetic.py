"""Unit tests for the synthetic irregular-network generator."""

import numpy as np
import pytest

from repro.inax.compiler import compile_genome
from repro.inax.synthetic import (
    PAPER_DEFAULTS,
    random_irregular_genome,
    synthetic_population,
)
from repro.neat.config import NEATConfig
from repro.neat.network import FeedForwardNetwork

from tests.neat.test_genome import _has_cycle


def test_paper_defaults_match_footnote_3():
    assert PAPER_DEFAULTS == {
        "num_individuals": 200,
        "num_inputs": 8,
        "num_outputs": 4,
        "num_hidden": 30,
        "sparsity": 0.2,
    }


def test_generated_genomes_are_acyclic():
    cfg = NEATConfig(num_inputs=4, num_outputs=3)
    rng = np.random.default_rng(0)
    for seed in range(5):
        genome = random_irregular_genome(seed, cfg, 15, 0.3, rng)
        assert not _has_cycle(genome.connections.keys())


def test_decoded_output_layer_width_is_num_outputs():
    # the §V-A anchor: every output sits in the final layer
    cfg = NEATConfig(num_inputs=8, num_outputs=5)
    rng = np.random.default_rng(1)
    for seed in range(5):
        genome = random_irregular_genome(seed, cfg, 20, 0.2, rng)
        net = FeedForwardNetwork.create(genome, cfg)
        assert sorted(net.layers[-1]) == list(cfg.output_keys)


def test_hidden_layer_structure_preserved():
    cfg = NEATConfig(num_inputs=8, num_outputs=4)
    rng = np.random.default_rng(2)
    genome = random_irregular_genome(
        0, cfg, 30, 0.2, rng, num_hidden_layers=1
    )
    net = FeedForwardNetwork.create(genome, cfg)
    assert len(net.layers) == 2  # hidden layer + output layer
    assert len(net.layers[0]) == 30

    genome3 = random_irregular_genome(
        1, cfg, 30, 0.2, rng, num_hidden_layers=3
    )
    net3 = FeedForwardNetwork.create(genome3, cfg)
    assert len(net3.layers) == 4


def test_no_dead_hidden_nodes():
    cfg = NEATConfig(num_inputs=8, num_outputs=4)
    rng = np.random.default_rng(3)
    genome = random_irregular_genome(0, cfg, 30, 0.05, rng)
    net = FeedForwardNetwork.create(genome, cfg)
    # anchors guarantee every hidden node survives pruning
    assert net.num_evaluated_nodes == 30 + 4


def test_sparsity_increases_connections():
    cfg = NEATConfig(num_inputs=8, num_outputs=4)
    rng = np.random.default_rng(4)
    sparse = random_irregular_genome(0, cfg, 30, 0.1, rng)
    dense = random_irregular_genome(1, cfg, 30, 0.6, rng)
    assert len(dense.connections) > len(sparse.connections)


def test_invalid_parameters():
    cfg = NEATConfig(num_inputs=2, num_outputs=2)
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_irregular_genome(0, cfg, -1, 0.2, rng)
    with pytest.raises(ValueError):
        random_irregular_genome(0, cfg, 5, 1.5, rng)
    with pytest.raises(ValueError):
        random_irregular_genome(0, cfg, 5, 0.2, rng, num_hidden_layers=0)


def test_population_is_reproducible():
    a = synthetic_population(num_individuals=5, seed=11)
    b = synthetic_population(num_individuals=5, seed=11)
    for x, y in zip(a, b):
        assert x.layer_sizes() == y.layer_sizes()
        assert x.num_connections == y.num_connections


def test_population_compiled_shapes():
    pop = synthetic_population(num_individuals=6, num_outputs=3, seed=12)
    assert len(pop) == 6
    for hw in pop:
        assert hw.num_inputs == 8
        assert hw.num_outputs == 3
        assert hw.num_nodes >= 30  # hidden survive + outputs


def test_zero_hidden_nodes():
    cfg = NEATConfig(num_inputs=3, num_outputs=2)
    rng = np.random.default_rng(5)
    genome = random_irregular_genome(0, cfg, 0, 0.5, rng)
    net = FeedForwardNetwork.create(genome, cfg)
    assert len(net.layers) == 1  # outputs only
